"""Perfetto and Prometheus exporters, pinned against golden files.

The golden files live next to this test; regenerate them by running
``python tests/obs/test_exporters.py`` after an intentional format
change and eyeballing the diff.
"""

import json
from pathlib import Path

from repro.obs.perfetto import perfetto_trace, write_perfetto
from repro.obs.prometheus import (prometheus_text,
                                  prometheus_timeline_text,
                                  write_prometheus)
from repro.obs.registry import TelemetryRegistry
from repro.obs.span import RequestTrace, SpanLog
from repro.obs.timeline import (FLEET_SERIES, NODE_SERIES, Timeline,
                                TimelineResult)
from repro.sim.trace import TraceRecorder

_HERE = Path(__file__).resolve().parent


def _sample_registry() -> TelemetryRegistry:
    reg = TelemetryRegistry()
    reg.counter("requests_completed", "Requests completed",
                subsystem="workload").inc(42)
    reg.counter("napi_pkts_total", "Packets per NAPI mode",
                core="0", mode="interrupt").inc(30)
    reg.counter("napi_pkts_total", core="0", mode="polling").inc(12)
    reg.gauge("sim_events_per_sec", "Fired events per wall-clock second",
              subsystem="sim").set(1_234_567.5)
    h = reg.histogram("request_latency_ns", "End-to-end latency",
                      subsystem="workload")
    for v in (1, 3, 100, 100, 5000):
        h.observe(v)
    return reg


def _sample_result():
    """A minimal RunResult stand-in with spans, channels, and config."""
    spans = SpanLog(1.0, seed=7)
    spans.records.append(RequestTrace(
        request_id=1, kind="GET", flow_id=0, core_id=0,
        via_ksoftirqd=False, bounds=(0, 5000, 12000, 30000, 31000,
                                     60000, 65000)))
    spans.records.append(RequestTrace(
        request_id=2, kind="SET", flow_id=1, core_id=1,
        via_ksoftirqd=True, bounds=(10000, 15000, 20000, 40000, 45000,
                                    70000, 75000)))
    trace = TraceRecorder()
    trace.record("core0.pstate", 0, 2)
    trace.record("core0.pstate", 50000, 0)
    trace.record("core0.ksoftirqd_wake", 20000)

    class Config:
        app = "memcached"
        freq_governor = "nmap"
        seed = 7

    class Result:
        pass

    result = Result()
    result.spans = spans
    result.trace = trace
    result.config = Config()
    result.duration_ns = 100_000
    return result


def _sample_timeline() -> TimelineResult:
    """A tiny hand-built two-node fleet timeline (2 sample windows)."""
    nodes = []
    for nid in range(2):
        tl = Timeline(NODE_SERIES)
        for i in (1, 2):
            row = [float(10 * i + nid + col)
                   for col in range(len(NODE_SERIES))]
            tl.append(i * 1_000_000, 1_000_000, row)
        nodes.append(tl)
    fleet = Timeline(FLEET_SERIES)
    for i in (1, 2):
        fleet.append(i * 1_000_000, 1_000_000,
                     [float(100 * i + col)
                      for col in range(len(FLEET_SERIES))])
    return TimelineResult(interval_ns=1_000_000, nodes=nodes,
                          fleet=fleet, events=[], dumps=[])


def _check_golden(path: Path, text: str) -> None:
    assert path.exists(), (
        f"golden file {path.name} missing; run `python {__file__}` "
        "to generate it")
    assert text == path.read_text()


def test_prometheus_matches_golden():
    _check_golden(_HERE / "golden_prometheus.txt",
                  prometheus_text(_sample_registry()))


def test_prometheus_histogram_series_are_cumulative():
    text = prometheus_text(_sample_registry())
    assert '# TYPE request_latency_ns histogram' in text
    assert 'request_latency_ns_bucket{subsystem="workload",le="+Inf"} 5' \
        in text
    assert 'request_latency_ns_count{subsystem="workload"} 5' in text


def test_prometheus_escapes_and_sanitizes():
    reg = TelemetryRegistry()
    reg.counter("weird.name", 'line\nbreak "quote" back\\slash',
                tag='a"b\\c\nd').inc()
    text = prometheus_text(reg)
    assert "weird_name" in text
    # HELP text escapes only backslash and newline — quotes stay raw
    # (the exposition format does not quote HELP, so `\"` would render
    # literally in scrapers).
    assert r'# HELP weird_name line\nbreak "quote" back\\slash' in text
    # Label values additionally escape the double quote.
    assert r'tag="a\"b\\c\nd"' in text


def test_prometheus_sanitizes_leading_digit_label():
    reg = TelemetryRegistry()
    reg.counter("total", **{"0day": "x"}).inc()
    text = prometheus_text(reg)
    assert '_0day="x"' in text


def test_prometheus_timeline_matches_golden():
    _check_golden(_HERE / "golden_prometheus_timeline.txt",
                  prometheus_timeline_text(_sample_timeline()))


def test_prometheus_timeline_shape():
    text = prometheus_timeline_text(_sample_timeline())
    # Node series carry a node label and simulated-ms timestamps.
    assert 'timeline_sent{node="0"} 10 1' in text
    assert 'timeline_sent{node="1"} 21 2' in text
    # Fleet series have no labels.
    assert "timeline_dispatched 100 1" in text
    assert "# TYPE timeline_p99_ns gauge" in text


def test_perfetto_matches_golden():
    doc = perfetto_trace(_sample_result())
    text = json.dumps(doc, indent=1, sort_keys=True) + "\n"
    _check_golden(_HERE / "golden_perfetto.json", text)


def test_perfetto_structure():
    doc = perfetto_trace(_sample_result())
    events = doc["traceEvents"]
    spans = [e for e in events if e.get("ph") == "X"]
    assert len(spans) == 12  # 2 requests x 6 stages
    # ts/dur are µs views of the exact ns bounds carried in args.
    for e in spans:
        assert e["ts"] == e["args"]["start_ns"] / 1000.0
        assert e["dur"] == e["args"]["dur_ns"] / 1000.0
    counters = [e for e in events if e.get("ph") == "C"]
    instants = [e for e in events if e.get("ph") == "i"]
    assert len(counters) == 2 and len(instants) == 1
    assert doc["otherData"]["app"] == "memcached"


def test_perfetto_without_channels():
    doc = perfetto_trace(_sample_result(), include_channels=False)
    assert not [e for e in doc["traceEvents"] if e.get("ph") in "Ci"]


def test_writers_roundtrip(tmp_path):
    result = _sample_result()
    out = tmp_path / "trace.json"
    n = write_perfetto(result, str(out))
    assert n == len(json.loads(out.read_text())["traceEvents"])
    prom = tmp_path / "metrics.txt"
    lines = write_prometheus(_sample_registry(), str(prom))
    assert lines == prom.read_text().count("\n")


if __name__ == "__main__":
    # Regenerate the golden files (review the diff before committing).
    (_HERE / "golden_prometheus.txt").write_text(
        prometheus_text(_sample_registry()))
    (_HERE / "golden_prometheus_timeline.txt").write_text(
        prometheus_timeline_text(_sample_timeline()))
    doc = perfetto_trace(_sample_result())
    (_HERE / "golden_perfetto.json").write_text(
        json.dumps(doc, indent=1, sort_keys=True) + "\n")
    print("golden files regenerated")


def test_fleet_perfetto_groups_tracks_per_node(tmp_path):
    from repro.cluster import FleetConfig, run_fleet
    from repro.obs.perfetto import fleet_perfetto_trace
    from repro.system import ServerConfig
    from repro.units import MS

    node = ServerConfig(app="memcached", load_level="low",
                        freq_governor="performance", n_cores=1,
                        trace_sample_rate=1.0)
    result = run_fleet(FleetConfig(node=node, n_nodes=2, seed=4), 10 * MS)
    doc = fleet_perfetto_trace(result)
    assert doc["otherData"]["n_nodes"] == 2
    assert doc["otherData"]["policy"] == "round-robin"
    names = {e["args"]["name"] for e in doc["traceEvents"]
             if e.get("name") == "process_name"}
    assert {"node0 requests", "node1 requests"} <= names
    # Span events live in each node's own pid group (2i+1).
    span_pids = {e["pid"] for e in doc["traceEvents"]
                 if e.get("ph") == "X"}
    assert span_pids == {1, 3}

    # write_perfetto dispatches on the result type.
    path = tmp_path / "fleet.json"
    count = write_perfetto(result, str(path))
    assert count == len(doc["traceEvents"]) > 0
    assert json.loads(path.read_text())["otherData"]["n_nodes"] == 2
