"""FaultPlan / FaultWindow validation and the scenario builders."""

import pytest

from repro.faults import KINDS, FaultPlan, FaultWindow, make_plan, merged
from repro.faults.scenarios import SCENARIOS
from repro.units import MS


def test_kinds_are_closed():
    assert set(KINDS) == {"nic-loss", "queue-overflow", "irq-storm",
                          "throttle", "dvfs-stuck", "core-offline",
                          "node-crash"}


def test_window_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultWindow("cosmic-ray", 0, MS)


def test_window_rejects_empty_or_negative_span():
    with pytest.raises(ValueError, match="window"):
        FaultWindow("throttle", 5, 5)
    with pytest.raises(ValueError, match="window"):
        FaultWindow("throttle", -1, 5)


def test_window_parameter_validation():
    with pytest.raises(ValueError, match="prob"):
        FaultWindow("nic-loss", 0, MS, prob=1.5)
    with pytest.raises(ValueError, match="prob"):
        FaultWindow("nic-loss", 0, MS, prob=0.8, corrupt_prob=0.5)
    with pytest.raises(ValueError, match="prob"):
        FaultWindow("nic-loss", 0, MS)  # loss without a probability
    with pytest.raises(ValueError, match="rate_hz"):
        FaultWindow("irq-storm", 0, MS)
    with pytest.raises(ValueError, match="rx_capacity"):
        FaultWindow("queue-overflow", 0, MS)
    with pytest.raises(ValueError, match="factor"):
        FaultWindow("dvfs-stuck", 0, MS, factor=0.5)


def test_window_duration():
    w = FaultWindow("throttle", 2 * MS, 5 * MS)
    assert w.duration_ns == 3 * MS


def test_plan_is_falsy_when_empty_truthy_otherwise():
    assert not FaultPlan()
    assert FaultPlan([FaultWindow("throttle", 0, MS)])


def test_plan_rejects_same_kind_overlap():
    with pytest.raises(ValueError, match="overlap"):
        FaultPlan([FaultWindow("throttle", 0, 2 * MS),
                   FaultWindow("throttle", MS, 3 * MS)])


def test_plan_allows_different_kind_overlap():
    plan = FaultPlan([FaultWindow("throttle", 0, 2 * MS),
                      FaultWindow("irq-storm", MS, 3 * MS, rate_hz=1000.0)])
    assert plan.kinds() == ("throttle", "irq-storm")


def test_plan_rejects_rx_shadow_group_overlap():
    # nic-loss and node-crash both shadow NIC receive; overlapping
    # windows would break the save/restore pairing.
    with pytest.raises(ValueError, match="overlap"):
        FaultPlan([FaultWindow("nic-loss", 0, 2 * MS, prob=0.1),
                   FaultWindow("node-crash", MS, 3 * MS)])


def test_plan_horizon():
    plan = FaultPlan([FaultWindow("throttle", 0, 2 * MS),
                      FaultWindow("node-crash", 3 * MS, 5 * MS)])
    assert plan.horizon_ns() == 5 * MS
    assert FaultPlan().horizon_ns() == 0


def test_plans_are_hashable_and_comparable():
    a = FaultPlan([FaultWindow("throttle", 0, MS)])
    b = FaultPlan([FaultWindow("throttle", 0, MS)])
    assert a == b
    assert hash(a) == hash(b)


def test_merged_combines_plans():
    a = FaultPlan([FaultWindow("throttle", 0, MS)])
    b = FaultPlan([FaultWindow("node-crash", 2 * MS, 3 * MS)])
    # merged() orders windows by start time; kinds() follows suit.
    assert merged(a, b).kinds() == ("throttle", "node-crash")


def test_merged_rejects_conflicts():
    a = FaultPlan([FaultWindow("throttle", 0, 2 * MS)])
    b = FaultPlan([FaultWindow("throttle", MS, 3 * MS)])
    with pytest.raises(ValueError, match="overlap"):
        merged(a, b)


def test_every_scenario_builds_a_valid_plan():
    for name in SCENARIOS:
        plan = make_plan(name, 100 * MS)
        if name == "healthy":
            assert plan is None
        else:
            assert plan
            assert plan.horizon_ns() <= 100 * MS


def test_make_plan_rejects_unknown_scenario():
    with pytest.raises(ValueError, match="unknown fault scenario"):
        make_plan("gremlins", MS)
