"""Faulted runs are pure functions of (config, seed).

Same plan + same seed must reproduce identical fault schedules, latency
arrays, retry counts, and energy — in-process, across repeated runs,
and across a worker pool (``parallel.run_many`` with workers=2), which
is how the fault_resilience experiment fans out.
"""

import numpy as np

from repro.experiments import runner
from repro.experiments.parallel import run_many
from repro.faults.scenarios import make_plan
from repro.system import ServerConfig, ServerSystem
from repro.units import MS
from repro.workload.retry import RetryPolicy

DURATION = 40 * MS


def _config(scenario, seed=9):
    return ServerConfig(app="memcached", load_level="medium",
                        freq_governor="nmap", n_cores=2, seed=seed,
                        fault_plan=make_plan(scenario, DURATION),
                        retry=RetryPolicy())


def _fault_signature(result):
    reg = result.telemetry
    names = ("fault_windows_total", "fault_rx_dropped_total",
             "fault_rx_corrupted_total", "fault_crash_rx_dropped_total",
             "fault_irq_storm_ticks_total", "requests_timed_out_total",
             "requests_retried_total", "requests_abandoned_total")
    out = {}
    for name in names:
        try:
            out[name] = reg.total(name)
        except KeyError:
            out[name] = 0
    return out


def test_repeated_faulted_runs_are_identical():
    for scenario in ("loss-burst", "irq-storm", "node-kill"):
        a = ServerSystem(_config(scenario)).run(DURATION)
        b = ServerSystem(_config(scenario)).run(DURATION)
        assert np.array_equal(a.latencies_ns, b.latencies_ns)
        assert a.energy.package_j == b.energy.package_j
        assert _fault_signature(a) == _fault_signature(b)


def test_fault_noise_is_independent_of_the_arrival_stream():
    # The faulted run and the healthy run share identical *inputs*:
    # every request the healthy run sends, the faulted run sends too,
    # at the same creation instant.
    healthy = ServerSystem(ServerConfig(
        app="memcached", load_level="medium", freq_governor="nmap",
        n_cores=2, seed=9)).run(DURATION)
    faulted = ServerSystem(_config("loss-burst")).run(DURATION)
    assert faulted.sent == healthy.sent


def test_serial_and_worker_pool_runs_are_identical():
    jobs = [(_config("loss-burst"), DURATION),
            (_config("throttle"), DURATION)]
    runner.clear_cache()
    serial = run_many(jobs, workers=1)
    runner.clear_cache()  # the pool must simulate, not hit the memo
    pooled = run_many(jobs, workers=2)
    runner.clear_cache()
    for a, b in zip(serial, pooled):
        assert np.array_equal(a.latencies_ns, b.latencies_ns)
        assert np.array_equal(a.completion_times_ns, b.completion_times_ns)
        assert a.energy.package_j == b.energy.package_j
        assert _fault_signature(a) == _fault_signature(b)


def test_fleet_node_kill_with_health_is_deterministic():
    from repro.cluster import FleetConfig, FleetSystem
    from repro.cluster.health import HealthPolicy

    def run_once():
        node = ServerConfig(app="memcached", load_level="medium",
                            freq_governor="nmap", n_cores=2,
                            retry=RetryPolicy())
        config = FleetConfig(node=node, n_nodes=3, policy="round-robin",
                             health=HealthPolicy(),
                             node_fault_plans={
                                 1: make_plan("node-kill", DURATION)},
                             seed=3)
        return FleetSystem(config).run(DURATION)

    a, b = run_once(), run_once()
    assert np.array_equal(a.latencies_ns, b.latencies_ns)
    assert a.energy.package_j == b.energy.package_j
    assert a.dispatched == b.dispatched
    for name in ("lb_marked_down_total", "lb_failovers_total",
                 "lb_redispatched_total"):
        assert a.telemetry.total(name) == b.telemetry.total(name)
