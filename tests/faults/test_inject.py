"""FaultInjector behavior, one fault kind at a time.

Each test runs a small seeded system with a single-kind plan and checks
the fault's observable signature (drops, storm ticks, caps, hogs) plus
the restore discipline: after the window, every shadow/cap/model is
back to its healthy state.
"""

import pytest

from repro.faults.inject import _StuckLatencyModel
from repro.faults.plan import FaultPlan, FaultWindow
from repro.system import ServerConfig, ServerSystem
from repro.units import MS
from repro.workload.retry import RetryPolicy

DURATION = 40 * MS


def _system(plan, retry=None, **overrides):
    base = dict(app="memcached", load_level="medium",
                freq_governor="nmap", n_cores=2, seed=7,
                fault_plan=plan, retry=retry)
    base.update(overrides)
    return ServerSystem(ServerConfig(**base))


def _run(plan, retry=None, **overrides):
    system = _system(plan, retry=retry, **overrides)
    return system, system.run(DURATION)


def test_healthy_config_builds_no_injector():
    system = _system(None)
    assert system.faults is None
    system = _system(FaultPlan())  # empty plan == no plan
    assert system.faults is None


def test_nic_loss_drops_and_corrupts():
    plan = FaultPlan([FaultWindow("nic-loss", 5 * MS, 25 * MS,
                                  prob=0.3, corrupt_prob=0.1)])
    system, result = _run(plan)
    faults = system.faults
    assert faults.rx_dropped > 0
    assert faults.rx_corrupted > 0
    # Both outcomes discard before the RX ring: the client saw them
    # as drops.
    assert result.dropped >= faults.rx_dropped + faults.rx_corrupted
    assert result.completed < result.sent


def test_nic_loss_with_retry_recovers_most_drops():
    plan = FaultPlan([FaultWindow("nic-loss", 5 * MS, 25 * MS, prob=0.3)])
    # 5 retries: P(all 6 attempts dropped) = 0.3^6 ~ 0.07%.
    system, result = _run(plan, retry=RetryPolicy(max_retries=5))
    client = system.client
    assert client.retries > 0
    # Retransmissions recover nearly everything a 30% burst loses.
    assert result.completed > 0.995 * result.sent


def test_nic_loss_restores_the_class_receive_method():
    plan = FaultPlan([FaultWindow("nic-loss", 5 * MS, 10 * MS, prob=0.5)])
    system, _ = _run(plan)
    # The instance-dict shadow must be gone after the window.
    assert "receive" not in vars(system.nic)


def test_node_crash_blackholes_and_parks():
    plan = FaultPlan([FaultWindow("node-crash", 10 * MS, 25 * MS)])
    system, result = _run(plan)
    assert system.faults.crash_rx_dropped > 0
    assert "receive" not in vars(system.nic)
    # No completions dated inside the blackout (responses already in
    # flight may land in its first instants; allow a small grace).
    times = result.completion_times_ns
    grace = MS
    blackout = (times > 10 * MS + grace) & (times < 25 * MS)
    assert not blackout.any()


def test_queue_overflow_forces_ring_drops_and_restores_capacity():
    baseline_capacity = _system(None).nic.queues[0].rx_capacity
    plan = FaultPlan([FaultWindow("queue-overflow", 5 * MS, 30 * MS,
                                  rx_capacity=1)])
    system, result = _run(plan, load_level="high")
    assert result.dropped > 0
    for queue in system.nic.queues:
        assert queue.rx_capacity == baseline_capacity


def test_irq_storm_burns_cycles():
    plan = FaultPlan([FaultWindow("irq-storm", 5 * MS, 30 * MS,
                                  rate_hz=50_000.0, cycles=2_000.0)])
    _, healthy = _run(None)
    system, stormy = _run(plan)
    # 25 ms at 50 kHz = ~1250 ticks.
    assert system.faults.storm_ticks == pytest.approx(1250, rel=0.05)
    assert stormy.energy_j > healthy.energy_j


def test_throttle_caps_then_restores():
    plan = FaultPlan([FaultWindow("throttle", 5 * MS, 30 * MS,
                                  cap_index=999)])
    _, healthy = _run(None)
    system, throttled = _run(plan)
    assert system.processor.pstate_cap_index == 0  # lifted after window
    assert throttled.p99_ns > healthy.p99_ns


def test_dvfs_stuck_swaps_and_restores_the_latency_model():
    plan = FaultPlan([FaultWindow("dvfs-stuck", 5 * MS, 30 * MS,
                                  factor=8.0)])
    system, _ = _run(plan)
    for ctrl in system.processor.dvfs:
        assert not isinstance(ctrl.model, _StuckLatencyModel)


def test_core_offline_degrades_then_recovers():
    plan = FaultPlan([FaultWindow("core-offline", 10 * MS, 25 * MS,
                                  cores=(0,))])
    _, healthy = _run(None)
    _, degraded = _run(plan)
    assert degraded.p99_ns > healthy.p99_ns
    # The hog is removed at window end: the run still completes the
    # vast majority of requests (the survivors + post-recovery core 0).
    assert degraded.completed > 0.9 * degraded.sent


def test_fault_windows_record_trace_channels():
    plan = FaultPlan([FaultWindow("throttle", 5 * MS, 20 * MS,
                                  cap_index=999)])
    _, result = _run(plan, trace=True)
    assert "fault.throttle" in result.trace.channels()
    values = list(result.trace.values("fault.throttle"))
    assert values == [1, 0]


def test_fault_telemetry_counters():
    plan = FaultPlan([
        FaultWindow("nic-loss", 5 * MS, 15 * MS, prob=0.3),
        FaultWindow("irq-storm", 20 * MS, 30 * MS, rate_hz=10_000.0),
    ])
    _, result = _run(plan)
    reg = result.telemetry
    assert reg.value("fault_windows_total", subsystem="faults",
                     kind="nic-loss") == 1
    assert reg.value("fault_windows_total", subsystem="faults",
                     kind="irq-storm") == 1
    assert reg.value("fault_rx_dropped_total", subsystem="faults") > 0
    assert reg.value("fault_irq_storm_ticks_total",
                     subsystem="faults") > 0


def test_fault_channels_get_their_own_perfetto_process():
    from repro.obs.perfetto import perfetto_trace
    plan = FaultPlan([FaultWindow("throttle", 5 * MS, 20 * MS,
                                  cap_index=999)])
    _, result = _run(plan, trace=True)
    doc = perfetto_trace(result)
    fault_pids = {e["pid"] for e in doc["traceEvents"]
                  if e.get("name", "").startswith("fault.")}
    assert fault_pids == {3}
    names = [e["args"]["name"] for e in doc["traceEvents"]
             if e.get("name") == "process_name"]
    assert "fault injection" in names
