"""Empty/absent fault plans and retry=None are bit-identical to baseline.

The fault subsystem's zero-cost-when-off guarantee: a config with
``fault_plan=FaultPlan()`` (or None) and ``retry=None`` must produce a
RunResult bit-identical — latency arrays, exact float energy, packet
mode counters, event counts, and every trace channel — to a config that
never mentions faults at all. This is the acceptance gate that lets the
fault machinery ride in the hot path's modules without perturbing every
cached/golden result in the repo.
"""

import numpy as np

from repro.faults.plan import FaultPlan
from repro.system import ServerConfig, ServerSystem
from repro.units import MS


def _assert_bit_identical(base, checked):
    assert base.sent == checked.sent
    assert base.completed == checked.completed
    assert base.dropped == checked.dropped
    assert np.array_equal(base.latencies_ns, checked.latencies_ns)
    assert np.array_equal(base.completion_times_ns,
                          checked.completion_times_ns)
    # Exact float equality: same accrual points, same order.
    assert base.energy.package_j == checked.energy.package_j
    assert base.energy.cores_j == checked.energy.cores_j
    assert base.pkts_interrupt_mode == checked.pkts_interrupt_mode
    assert base.pkts_polling_mode == checked.pkts_polling_mode
    assert base.ksoftirqd_wakeups == checked.ksoftirqd_wakeups
    assert base.perf.events_fired == checked.perf.events_fired
    assert sorted(base.trace.channels()) == sorted(checked.trace.channels())
    for channel in base.trace.channels():
        assert np.array_equal(base.trace.times(channel),
                              checked.trace.times(channel)), channel
        assert np.array_equal(base.trace.values(channel),
                              checked.trace.values(channel)), channel


def _run(**overrides):
    config = ServerConfig(app="memcached", load_level="high",
                          freq_governor="nmap", n_cores=2, seed=42,
                          trace=True, **overrides)
    system = ServerSystem(config)
    assert (system.faults is not None) == bool(overrides.get("fault_plan"))
    return system.run(100 * MS)


def test_empty_plan_is_bit_identical_to_absent_plan():
    base = _run()
    checked = _run(fault_plan=FaultPlan(), retry=None)
    _assert_bit_identical(base, checked)


def test_none_plan_explicitly_set_is_bit_identical():
    base = _run()
    checked = _run(fault_plan=None, retry=None)
    _assert_bit_identical(base, checked)
