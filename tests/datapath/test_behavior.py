"""Behavioural contracts of the bypass backends and the registry."""

import pytest

from repro.datapath import (MODE_BUSY_POLL, MODE_INTERMITTENT, RX_BACKENDS,
                            make_rx_backend)
from repro.datapath.metronome import MetronomeThread
from repro.system import ServerConfig, ServerSystem
from repro.units import MS

DURATION = 40 * MS


def _run_system(datapath: str, governor: str, **overrides):
    base = dict(app="memcached", load_level="medium", n_cores=2,
                freq_governor=governor, seed=5, datapath=datapath)
    base.update(overrides)
    system = ServerSystem(ServerConfig(**base))
    return system, system.run(DURATION)


# -- registry ----------------------------------------------------------- #

def test_registry_lists_all_backends():
    assert set(RX_BACKENDS) == {"napi", "poll", "metronome", "nmap-hybrid"}


def test_unknown_backend_name_raises():
    with pytest.raises(ValueError, match="unknown datapath"):
        make_rx_backend("xdp", stack=None)


def test_bad_backend_params_raise():
    with pytest.raises(ValueError, match="burst_size"):
        ServerSystem(ServerConfig(n_cores=2, datapath="poll",
                                  datapath_params={"burst_size": 0}))
    with pytest.raises(ValueError, match="n_poll_cores"):
        ServerSystem(ServerConfig(n_cores=2, datapath="poll",
                                  datapath_params={"n_poll_cores": 0}))
    with pytest.raises(ValueError, match="worker core"):
        ServerSystem(ServerConfig(n_cores=2, datapath="poll",
                                  datapath_params={"n_poll_cores": 2}))
    with pytest.raises(ValueError, match="initial_sleep_ns"):
        ServerSystem(ServerConfig(n_cores=2, datapath="metronome",
                                  datapath_params={"initial_sleep_ns": 1}))


# -- governor coupling -------------------------------------------------- #

def test_hybrid_requires_nmap_family_governor():
    with pytest.raises(ValueError, match="NMAP-family"):
        ServerSystem(ServerConfig(n_cores=2, freq_governor="ondemand",
                                  datapath="nmap-hybrid"))


def test_hybrid_accepts_nmap_adaptive():
    system = ServerSystem(ServerConfig(n_cores=2,
                                       freq_governor="nmap-adaptive",
                                       datapath="nmap-hybrid"))
    for thread in system.datapath.threads:
        assert thread.engine is not None


def test_nmap_simpl_rejects_bypass_backends():
    """nmap-simpl reads ksoftirqd wake signals — kernel path only."""
    with pytest.raises(ValueError, match="nmap-simpl"):
        ServerSystem(ServerConfig(n_cores=2, freq_governor="nmap-simpl",
                                  datapath="poll"))


def test_nmap_governor_runs_on_every_backend():
    """The monitor duck-types the mode source, so NMAP DVFS works on
    bypass backends too (listeners see canonical interrupt/polling)."""
    for datapath in ("poll", "metronome", "nmap-hybrid"):
        _, result = _run_system(datapath, "nmap")
        assert result.completed > 0


# -- poll backend ------------------------------------------------------- #

def test_poll_core_hosts_no_worker_and_never_idles():
    system, result = _run_system("poll", "performance")
    assert system.datapath.worker_core_ids() == [1]
    assert [w.core_id for w in system.workers] == [1]
    poll_core = system.processor.cores[0]
    # The spin loop keeps the core in CC0 for the entire run (including
    # the drain window): full active power around the clock — the
    # busy-poll tax.
    assert poll_core.cstate_residency_ns["CC0"] >= DURATION
    assert all(poll_core.cstate_residency_ns[s] == 0
               for s in poll_core.cstate_residency_ns if s != "CC0")
    assert result.ksoftirqd_wakeups == 0
    assert result.sleep_wakes == 0
    assert result.datapath_pkts == {MODE_BUSY_POLL: result.completed}


def test_poll_costs_more_energy_than_napi():
    _, bypass = _run_system("poll", "performance")
    _, kernel = _run_system("napi", "performance")
    assert bypass.energy_j > kernel.energy_j


def test_poll_beats_napi_latency():
    """No irq/softirq machinery and immediate doorbell pickup: the
    latency floor that motivates busy polling."""
    _, bypass = _run_system("poll", "performance")
    _, kernel = _run_system("napi", "performance")
    assert bypass.p99_ns < kernel.p99_ns


# -- metronome backend -------------------------------------------------- #

def test_metronome_sleep_stays_within_bounds():
    params = {"min_sleep_ns": 10_000, "max_sleep_ns": 80_000,
              "initial_sleep_ns": 20_000}
    system, result = _run_system("metronome", "ondemand",
                                 datapath_params=params)
    assert result.sleep_wakes > 0
    for thread in system.datapath.threads:
        assert 10_000 <= thread.sleep_ns <= 80_000


def test_metronome_timer_never_fires_early(sim, make_core):
    """hr_sleep semantics: grid quantization + overshoot land the fire
    strictly at/after request + overshoot, never before."""
    from repro.osched.scheduler import CoreScheduler

    class _Backend:  # the minimum MetronomeThread needs to arm timers
        min_sleep_ns = 5_000
        max_sleep_ns = 200_000
        initial_sleep_ns = 7_300
        sleep_multiplier = 2.0
        timer_resolution_ns = 1_000
        overshoot_ns = 2_000
        overshoot_jitter_ns = 1_000
        adaptive = False

        class stack:
            pass

    _Backend.stack.sim = sim
    sched = CoreScheduler(sim, make_core(0))

    class _Rng:
        def random(self):
            return 0.999

    thread = MetronomeThread(_Backend(), sched, 0, _Rng())
    thread.arm_timer()
    fire_at = thread._timer_ev.time
    requested = 7_300
    quantized = 8_000  # ceil to the 1 µs grid
    assert fire_at >= sim.now + requested + 2_000
    assert quantized + 2_000 <= fire_at <= quantized + 2_000 + 1_000


def test_metronome_trades_latency_for_energy():
    _, sleepy = _run_system("metronome", "ondemand")
    _, bypass = _run_system("poll", "performance")
    assert sleepy.energy_j < bypass.energy_j
    assert sleepy.p99_ns > bypass.p99_ns


# -- telemetry & timeline ----------------------------------------------- #

def test_datapath_counters_exported_per_backend():
    _, result = _run_system("poll", "performance")
    reg = result.telemetry
    total = sum(
        reg.value("datapath_pkts_total", subsystem="datapath",
                  backend="poll", core=str(cid), mode=MODE_BUSY_POLL)
        for cid in (0,))
    assert total == result.datapath_pkts[MODE_BUSY_POLL]
    assert reg.value("datapath_empty_polls_total", subsystem="datapath",
                     backend="poll", core="0") > 0

    _, result = _run_system("metronome", "ondemand")
    reg = result.telemetry
    wakes = sum(
        reg.value("datapath_sleep_wakes_total", subsystem="datapath",
                  backend="metronome", core=str(cid)) for cid in (0, 1))
    assert wakes == result.sleep_wakes
    assert result.datapath_pkts[MODE_INTERMITTENT] > 0


def test_timeline_columns_track_backend_modes():
    from repro.obs.timeline import TimelineConfig

    # Result totals include the post-duration drain window, which the
    # timeline does not sample — spin loops and timer wakes keep
    # accumulating there, so window sums are a (large) lower bound.
    _, result = _run_system("poll", "performance",
                            timeline=TimelineConfig(interval_ns=5 * MS))
    node = result.timeline.node()
    assert int(node.series("pkts_busy_poll").sum()) == \
        result.datapath_pkts[MODE_BUSY_POLL]
    assert int(node.series("pkts_interrupt").sum()) == 0
    loops = int(node.series("poll_loops").sum())
    assert 0 < loops <= result.poll_loops
    assert int(node.series("sleep_wakes").sum()) == 0

    _, result = _run_system("metronome", "ondemand",
                            timeline=TimelineConfig(interval_ns=5 * MS))
    node = result.timeline.node()
    assert int(node.series("pkts_intermittent").sum()) == \
        result.datapath_pkts[MODE_INTERMITTENT]
    wakes = int(node.series("sleep_wakes").sum())
    assert 0 < wakes <= result.sleep_wakes


def test_faulty_nic_still_rings_the_doorbell():
    """The fault injector shadows NIC.receive in the instance dict and
    delegates to the class method — the poll doorbell must survive."""
    from repro.faults.scenarios import make_plan

    plan = make_plan("loss-burst", DURATION)
    _, result = _run_system("poll", "performance", fault_plan=plan)
    assert result.completed > 0
    assert result.datapath_pkts[MODE_BUSY_POLL] > 0
