"""Bypass backends obey the repo's determinism discipline.

Same config, same seed → bit-identical results (latency bytes, exact
float energy, per-mode packet counts, event totals); different seeds →
different runs; ``batch_events`` on/off → identical results (the fast
paths change heap shape only). The Metronome backends draw timer jitter
from derived RNG streams, so their determinism is worth proving, not
assuming.
"""

import numpy as np
import pytest

from repro.system import ServerConfig, ServerSystem
from repro.units import MS

#: Each bypass backend with its natural governor pairing.
BACKENDS = [("poll", "performance"),
            ("metronome", "ondemand"),
            ("nmap-hybrid", "nmap")]

DURATION = 60 * MS


def _config(datapath: str, governor: str, **overrides) -> ServerConfig:
    base = dict(app="memcached", load_level="medium", n_cores=2,
                freq_governor=governor, seed=7, datapath=datapath)
    base.update(overrides)
    return ServerConfig(**base)


def _fingerprint(result):
    return (result.sent, result.completed, result.dropped,
            result.latencies_ns.tobytes(),
            result.completion_times_ns.tobytes(),
            result.energy.package_j, result.energy.cores_j,
            tuple(sorted(result.datapath_pkts.items())),
            result.poll_loops, result.sleep_wakes,
            result.perf.events_fired)


@pytest.mark.parametrize("datapath,governor", BACKENDS)
def test_same_seed_is_bit_identical(datapath, governor):
    config = _config(datapath, governor)
    first = ServerSystem(config).run(DURATION)
    second = ServerSystem(config).run(DURATION)
    assert _fingerprint(first) == _fingerprint(second)


@pytest.mark.parametrize("datapath,governor", BACKENDS)
def test_different_seeds_differ(datapath, governor):
    a = ServerSystem(_config(datapath, governor, seed=7)).run(DURATION)
    b = ServerSystem(_config(datapath, governor, seed=8)).run(DURATION)
    assert not np.array_equal(a.latencies_ns, b.latencies_ns)


# nmap-hybrid is absent: it requires an NMAP-family governor, and the
# nmap governor's sampling events are tie-order sensitive across heap
# shapes on the *kernel* path already (napi+nmap diverges by ~1 ns under
# batch_events on/off) — the repo's batch_events bit-identity contract
# (tests/test_batch_events.py) only covers governors without that
# sensitivity. The aggregate test below covers hybrid instead.
@pytest.mark.parametrize("datapath,governor",
                         [("poll", "performance"),
                          ("metronome", "ondemand")])
def test_batch_events_paths_bit_identical(datapath, governor):
    batched = ServerSystem(
        _config(datapath, governor, batch_events=True)).run(DURATION)
    legacy = ServerSystem(
        _config(datapath, governor, batch_events=False)).run(DURATION)
    # Everything but the event count — batching exists to shrink that.
    assert _fingerprint(batched)[:-1] == _fingerprint(legacy)[:-1]
    assert batched.perf.events_fired < legacy.perf.events_fired


def test_batch_events_keeps_hybrid_aggregates():
    """Hybrid inherits the nmap governor's same-ns tie sensitivity, so
    only the aggregate accounting is invariant across heap shapes."""
    batched = ServerSystem(
        _config("nmap-hybrid", "nmap", batch_events=True)).run(DURATION)
    legacy = ServerSystem(
        _config("nmap-hybrid", "nmap", batch_events=False)).run(DURATION)
    assert batched.completed == legacy.completed
    assert batched.datapath_pkts == legacy.datapath_pkts
    assert batched.poll_loops == legacy.poll_loops
    assert batched.sleep_wakes == legacy.sleep_wakes


@pytest.mark.parametrize("datapath,governor", BACKENDS)
def test_sanitized_bypass_run_bit_identical(monkeypatch, datapath, governor):
    config = _config(datapath, governor)
    base = ServerSystem(config).run(DURATION)
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    system = ServerSystem(config)
    assert system.sim.sanitizer is not None
    checked = system.run(DURATION)
    assert _fingerprint(base) == _fingerprint(checked)
