"""Default-datapath parity: the RxBackend refactor is invisible.

The ``repro.datapath`` extraction moved NAPI construction, trace-probe
wiring, telemetry registration, and result accounting behind a backend
interface. The contract is bit-identity: a ``datapath="napi"`` run (the
default) reproduces the pre-refactor RunResult exactly — integer
counters, the full latency array, exact float energy, and event counts.

The constants below were captured on the pre-refactor tree (the parent
of the datapath commit). A mismatch here means the refactor changed
simulation *behaviour*, not just structure — which voids every cached
result and figure in one stroke, so these tests are intentionally
brittle.
"""

import hashlib

import numpy as np
import pytest

from repro.experiments import parallel, runner
from repro.system import ServerConfig, ServerSystem
from repro.units import MS

#: Captured pre-refactor (see module docstring). Floats are stored as
#: ``float.hex()`` strings: parity means the same bits, not "close".
GOLDENS = {
    "fig9_quick_memcached": {
        "sent": 56531, "completed": 56531, "dropped": 0,
        "pkts_interrupt_mode": 25233, "pkts_polling_mode": 31298,
        "ksoftirqd_wakeups": 0,
        "package_j_hex": "0x1.1191eb7a24055p+2",
        "cores_j_hex": "0x1.8c67d6a8dafaap+1",
        "p99_ns": 165351.09999999986,
        "latencies_sha256": "78faa8fc4a7b5ecd9bf07878c3b9a6"
                            "495ba151e212356e4fbb8b290e44a09ee9",
        "events_fired": 204202,
    },
    "nginx_medium_ondemand": {
        "sent": 3679, "completed": 3679, "dropped": 0,
        "pkts_interrupt_mode": 46533, "pkts_polling_mode": 34626,
        "ksoftirqd_wakeups": 0,
        "package_j_hex": "0x1.d94955314784cp+1",
        "cores_j_hex": "0x1.53258d108109cp+1",
        "p99_ns": 8811813.7,
        "latencies_sha256": "967b743d9cb807c73db591b39fa793"
                            "b81944f371956265337cc9fe385ed8f129",
        "events_fired": 180538,
    },
}

CELLS = {
    "fig9_quick_memcached": (
        ServerConfig(app="memcached", load_level="high",
                     freq_governor="nmap", n_cores=2, seed=1, trace=True),
        300 * MS),
    "nginx_medium_ondemand": (
        ServerConfig(app="nginx", load_level="medium",
                     freq_governor="ondemand", n_cores=2, seed=1),
        300 * MS),
}


def _capture(result) -> dict:
    return {
        "sent": result.sent, "completed": result.completed,
        "dropped": result.dropped,
        "pkts_interrupt_mode": result.pkts_interrupt_mode,
        "pkts_polling_mode": result.pkts_polling_mode,
        "ksoftirqd_wakeups": result.ksoftirqd_wakeups,
        "package_j_hex": result.energy.package_j.hex(),
        "cores_j_hex": result.energy.cores_j.hex(),
        "p99_ns": result.p99_ns,
        "latencies_sha256": hashlib.sha256(
            result.latencies_ns.tobytes()).hexdigest(),
        "events_fired": result.perf.events_fired,
    }


@pytest.mark.slow
@pytest.mark.parametrize("cell", sorted(CELLS))
def test_default_datapath_matches_prerefactor_golden(cell):
    config, duration_ns = CELLS[cell]
    result = ServerSystem(config).run(duration_ns)
    assert _capture(result) == GOLDENS[cell]
    # The refactor's new generic accounting agrees with the legacy view.
    assert result.datapath_pkts == {
        "interrupt": GOLDENS[cell]["pkts_interrupt_mode"],
        "polling": GOLDENS[cell]["pkts_polling_mode"]}
    assert result.sleep_wakes == 0  # napi has no timer wakes


@pytest.mark.slow
def test_sanitized_run_matches_golden(monkeypatch):
    """The sanitizer's method shadows coexist with the backend layer."""
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    config, duration_ns = CELLS["fig9_quick_memcached"]
    system = ServerSystem(config)
    assert system.sim.sanitizer is not None
    result = system.run(duration_ns)
    assert _capture(result) == GOLDENS["fig9_quick_memcached"]


@pytest.mark.slow
def test_worker_processes_match_golden(tmp_path, monkeypatch):
    """Fan-out parity: pickled configs rebuild the same backend."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    jobs = [CELLS[c] for c in sorted(CELLS)]
    runner.clear_cache()
    results = parallel.run_many(jobs, workers=2)
    runner.clear_cache()
    for cell, result in zip(sorted(CELLS), results):
        assert _capture(result) == GOLDENS[cell]
