"""Mixed-datapath fleets: per-node backends via node_overrides.

``datapath``/``datapath_params`` are plain ServerConfig fields, so a
fleet can mix kernel-NAPI nodes with busy-poll and Metronome nodes the
same way it mixes governors — and sharded execution must stay
bit-identical to the serial fleet regardless of the mix.
"""

import numpy as np

from repro.cluster import FleetConfig, FleetSystem, ShardedFleetSystem
from repro.system import ServerConfig
from repro.units import MS

DURATION = 20 * MS


def _mixed_config(**overrides):
    node = ServerConfig(app="memcached", load_level="medium",
                        freq_governor="nmap", n_cores=2)
    base = dict(
        node=node, n_nodes=4, policy="round-robin", seed=13,
        node_overrides={
            1: {"datapath": "poll", "freq_governor": "performance",
                "datapath_params": {"spin_gap_ns": 2_000}},
            2: {"datapath": "metronome", "freq_governor": "ondemand"},
            3: {"datapath": "nmap-hybrid"},
        })
    base.update(overrides)
    return FleetConfig(**base)


def test_node_overrides_select_backends():
    config = _mixed_config()
    assert config.node_config(0).datapath == "napi"
    assert config.node_config(1).datapath == "poll"
    assert config.node_config(1).datapath_params == {"spin_gap_ns": 2_000}
    assert config.node_config(2).datapath == "metronome"
    assert config.node_config(3).datapath == "nmap-hybrid"


def test_mixed_fleet_runs_every_backend():
    result = FleetSystem(_mixed_config()).run(DURATION)
    assert result.completed > 0
    napi, poll, metronome, hybrid = result.node_results
    assert set(napi.datapath_pkts) <= {"interrupt", "polling"}
    assert set(poll.datapath_pkts) == {"busy-poll"}
    assert poll.sleep_wakes == 0
    assert set(metronome.datapath_pkts) <= {"intermittent", "polling"}
    assert metronome.sleep_wakes > 0
    assert hybrid.sleep_wakes > 0
    # The busy-poll node burns the most energy of the four (per-node
    # load is identical under round-robin).
    assert poll.energy_j == max(n.energy_j for n in result.node_results)


def test_mixed_fleet_sharding_is_bit_identical():
    serial = FleetSystem(_mixed_config()).run(DURATION)
    for shards in (2, 4):
        sharded = ShardedFleetSystem(
            _mixed_config(shards=shards)).run(DURATION)
        assert sharded.completed == serial.completed
        assert np.array_equal(sharded.latencies_ns, serial.latencies_ns)
        assert sharded.energy.package_j == serial.energy.package_j
        for x, y in zip(sharded.node_results, serial.node_results):
            assert np.array_equal(x.latencies_ns, y.latencies_ns)
            assert x.energy.package_j == y.energy.package_j
            assert x.datapath_pkts == y.datapath_pkts
            assert x.poll_loops == y.poll_loops
            assert x.sleep_wakes == y.sleep_wakes
