"""RSS flow distribution."""

import pytest
from hypothesis import given, strategies as st

from repro.nic.rss import RssDistributor


def test_round_robin_mode_is_modulo():
    rss = RssDistributor(4, mode="round-robin")
    assert [rss.queue_for(i) for i in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]


def test_hash_mode_is_stable_per_flow():
    rss = RssDistributor(8)
    assert all(rss.queue_for(i) == rss.queue_for(i) for i in range(100))


def test_hash_mode_spreads_evenly():
    """Sequential flow ids spread nearly evenly (Sec. 6.1's RSS claim)."""
    n_queues, n_flows = 8, 20_000
    rss = RssDistributor(n_queues)
    counts = [0] * n_queues
    for flow in range(n_flows):
        counts[rss.queue_for(flow)] += 1
    expected = n_flows / n_queues
    for c in counts:
        assert abs(c - expected) < 0.1 * expected


def test_invalid_args():
    with pytest.raises(ValueError):
        RssDistributor(0)
    with pytest.raises(ValueError):
        RssDistributor(4, mode="magic")


@given(st.integers(min_value=0), st.integers(min_value=1, max_value=64))
def test_queue_always_in_range(flow, n_queues):
    rss = RssDistributor(n_queues)
    assert 0 <= rss.queue_for(flow) < n_queues
