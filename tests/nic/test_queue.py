"""NIC queue rings."""

import pytest

from repro.nic.packet import Packet, TxCompletion
from repro.nic.queue import NicQueue


def pkt(flow=0):
    return Packet(flow_id=flow, size_bytes=100, created_ns=0)


def test_rx_fifo_order():
    q = NicQueue(0)
    a, b = pkt(), pkt()
    q.push_rx(a)
    q.push_rx(b)
    assert q.pop_rx() is a
    assert q.pop_rx() is b
    assert q.pop_rx() is None


def test_rx_tail_drop_when_full():
    q = NicQueue(0, rx_capacity=2)
    assert q.push_rx(pkt())
    assert q.push_rx(pkt())
    assert not q.push_rx(pkt())
    assert q.rx_dropped == 1
    assert q.rx_enqueued == 2


def test_txc_ring():
    q = NicQueue(0)
    q.push_txc(TxCompletion(1))
    q.push_txc(TxCompletion(2))
    assert q.pop_txc().packet_id == 1
    assert q.pop_txc().packet_id == 2
    assert q.pop_txc() is None


def test_has_work_reflects_both_rings():
    q = NicQueue(0)
    assert not q.has_work
    q.push_rx(pkt())
    assert q.has_work
    q.pop_rx()
    q.push_txc(TxCompletion(7))
    assert q.has_work


def test_rx_depth():
    q = NicQueue(0)
    q.push_rx(pkt())
    q.push_rx(pkt())
    assert q.rx_depth == 2


def test_invalid_capacity():
    with pytest.raises(ValueError):
        NicQueue(0, rx_capacity=0)
