"""Interrupt moderation."""

import pytest

from repro.nic.interrupt import InterruptModerator
from repro.units import US


def test_first_fire_is_immediate():
    mod = InterruptModerator(10 * US)
    assert mod.next_fire_time(123) == 123


def test_minimum_gap_enforced():
    mod = InterruptModerator(10 * US)
    mod.record_fire(100)
    assert mod.next_fire_time(101) == 100 + 10 * US


def test_gap_elapsed_allows_immediate_fire():
    mod = InterruptModerator(10 * US)
    mod.record_fire(100)
    assert mod.next_fire_time(100 + 20 * US) == 100 + 20 * US


def test_fire_counter():
    mod = InterruptModerator()
    mod.record_fire(0)
    mod.record_fire(20_000)
    assert mod.fired == 2


def test_zero_gap_means_no_moderation():
    mod = InterruptModerator(0)
    mod.record_fire(100)
    assert mod.next_fire_time(100) == 100


def test_negative_gap_rejected():
    with pytest.raises(ValueError):
        InterruptModerator(-1)
