"""Packet objects."""

import pytest

from repro.nic.packet import Packet, TxCompletion


def test_unique_ids():
    a = Packet(flow_id=1, size_bytes=64, created_ns=0)
    b = Packet(flow_id=1, size_bytes=64, created_ns=0)
    assert a.packet_id != b.packet_id


def test_default_kind_is_data():
    assert Packet(flow_id=0, size_bytes=64, created_ns=0).kind == "data"


def test_ack_kind():
    pkt = Packet(flow_id=0, size_bytes=64, created_ns=0, kind="ack")
    assert pkt.kind == Packet.KIND_ACK


def test_invalid_size_rejected():
    with pytest.raises(ValueError):
        Packet(flow_id=0, size_bytes=0, created_ns=0)


def test_invalid_kind_rejected():
    with pytest.raises(ValueError):
        Packet(flow_id=0, size_bytes=64, created_ns=0, kind="rst")


def test_tx_completion_carries_packet_id():
    assert TxCompletion(42).packet_id == 42
