"""Multi-queue NIC: steering, interrupt raising, masking, Tx."""

import pytest

from repro.nic.nic import MultiQueueNic
from repro.nic.packet import Packet
from repro.nic.rss import RssDistributor
from repro.units import MS, US


def make_nic(sim, n_queues=2, **kwargs):
    kwargs.setdefault("rss", RssDistributor(n_queues, mode="round-robin"))
    return MultiQueueNic(sim, n_queues=n_queues, **kwargs)


def pkt(flow=0, request=None):
    return Packet(flow_id=flow, size_bytes=128, created_ns=0,
                  request=request)


def test_receive_steers_by_rss(sim):
    nic = make_nic(sim)
    nic.bind(0, lambda q: None)
    nic.bind(1, lambda q: None)
    nic.receive(pkt(flow=0))
    nic.receive(pkt(flow=1))
    assert nic.queues[0].rx_depth == 1
    assert nic.queues[1].rx_depth == 1


def test_interrupt_fires_after_moderation(sim):
    fired = []
    nic = make_nic(sim, itr_gap_ns=10 * US)
    nic.bind(0, lambda q: fired.append((q, sim.now)))
    nic.receive(pkt(flow=0))
    sim.run_until(1 * MS)
    assert fired == [(0, 0)]  # first interrupt immediate


def test_second_interrupt_respects_gap(sim):
    fired = []
    nic = make_nic(sim, itr_gap_ns=10 * US)

    def handler(q):
        fired.append(sim.now)
        nic.disable_irq(q)
        nic.queues[q].pop_rx()          # drain
        nic.enable_irq(q)

    nic.bind(0, handler)
    nic.receive(pkt(flow=0))
    sim.run_until(1 * US)
    nic.receive(pkt(flow=0))
    sim.run_until(1 * MS)
    assert fired == [0, 10 * US]


def test_masked_queue_never_interrupts(sim):
    fired = []
    nic = make_nic(sim)
    nic.bind(0, lambda q: fired.append(q))
    nic.disable_irq(0)
    nic.receive(pkt(flow=0))
    sim.run_until(1 * MS)
    assert fired == []
    assert nic.queues[0].rx_depth == 1


def test_enable_irq_rearms_pending_work(sim):
    fired = []
    nic = make_nic(sim)
    nic.bind(0, lambda q: fired.append(sim.now))
    nic.disable_irq(0)
    nic.receive(pkt(flow=0))
    sim.run_until(50 * US)
    nic.enable_irq(0)
    sim.run_until(1 * MS)
    assert fired == [50 * US]


def test_data_packet_counter_excludes_acks_and_raw(sim):
    nic = make_nic(sim)
    nic.bind(0, lambda q: None)
    nic.bind(1, lambda q: None)
    nic.receive(pkt(flow=0, request=object()))
    nic.receive(Packet(flow_id=0, size_bytes=64, created_ns=0, kind="ack"))
    nic.receive(pkt(flow=0, request=None))
    assert nic.rx_packets == 3
    assert nic.rx_data_packets == 1


def test_transmit_delivers_after_wire_latency(sim):
    got = []
    nic = make_nic(sim, wire_latency_ns=5 * US)
    nic.bind(0, lambda q: None)
    p = pkt(flow=0)
    nic.transmit(p, 0, lambda packet: got.append((packet, sim.now)))
    sim.run_until(1 * MS)
    assert got == [(p, 5 * US)]
    assert nic.queues[0].txc_enqueued == 1


def test_unbound_queue_interrupt_raises(sim):
    nic = make_nic(sim)
    nic.receive(pkt(flow=0))
    with pytest.raises(RuntimeError):
        sim.run_until(1 * MS)


def test_rx_capacity_drop_counts(sim):
    nic = make_nic(sim, rx_capacity=1)
    nic.bind(0, lambda q: None)
    nic.bind(1, lambda q: None)
    nic.disable_irq(0)
    assert nic.receive(pkt(flow=0))
    assert not nic.receive(pkt(flow=0))
    assert nic.queues[0].rx_dropped == 1
