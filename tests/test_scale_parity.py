"""Quick-scale validity: 2 cores at per-core load ≈ 8 cores (the testbed).

DESIGN.md's scaling claim: every mechanism is driven by *per-core* load
(RSS spreads flows evenly), so simulating 2 of 8 cores at identical
per-core rates preserves latency behaviour and per-core energy. These
tests check that claim directly.
"""

import pytest

from repro.system import ServerConfig, ServerSystem
from repro.units import MS


@pytest.fixture(scope="module")
def pair():
    results = {}
    for n_cores in (2, 8):
        config = ServerConfig(app="memcached", load_level="high",
                              freq_governor="nmap", n_cores=n_cores,
                              seed=11)
        results[n_cores] = ServerSystem(config).run(200 * MS)
    return results


@pytest.mark.slow
def test_total_throughput_scales_with_cores(pair):
    per_core_2 = pair[2].sent / 2
    per_core_8 = pair[8].sent / 8
    assert per_core_8 == pytest.approx(per_core_2, rel=0.05)


@pytest.mark.slow
def test_p99_is_scale_invariant(pair):
    p99_2 = pair[2].p99_ns
    p99_8 = pair[8].p99_ns
    assert p99_8 == pytest.approx(p99_2, rel=0.5)
    assert pair[8].slo_result().satisfied == pair[2].slo_result().satisfied


@pytest.mark.slow
def test_energy_per_core_is_scale_invariant(pair):
    e2 = pair[2].energy_j / 2
    e8 = pair[8].energy_j / 8
    assert e8 == pytest.approx(e2, rel=0.15)


@pytest.mark.slow
def test_mode_split_is_scale_invariant(pair):
    def ratio(result):
        return result.pkts_polling_mode / max(1, result.pkts_interrupt_mode)

    assert ratio(pair[8]) == pytest.approx(ratio(pair[2]), rel=0.4)
