"""Unit helpers."""

import pytest
from hypothesis import given, strategies as st

from repro import units


def test_constants():
    assert units.US == 1_000
    assert units.MS == 1_000_000
    assert units.S == 1_000_000_000
    assert units.GHZ == 10 ** 9


def test_conversions():
    assert units.ns_to_us(1_500) == 1.5
    assert units.ns_to_ms(2_500_000) == 2.5
    assert units.ns_to_s(units.S) == 1.0


def test_cycles_to_ns_basic():
    # 3200 cycles at 3.2 GHz = 1 µs.
    assert units.cycles_to_ns(3200, 3.2 * units.GHZ) == 1000


def test_cycles_to_ns_rounds_up_to_one():
    assert units.cycles_to_ns(1, 3.2 * units.GHZ) == 1


def test_cycles_to_ns_zero_work():
    assert units.cycles_to_ns(0, units.GHZ) == 0


def test_cycles_to_ns_rejects_bad_freq():
    with pytest.raises(ValueError):
        units.cycles_to_ns(100, 0)


def test_ns_to_cycles_roundtrip():
    cycles = units.ns_to_cycles(1000, 3.2 * units.GHZ)
    assert cycles == pytest.approx(3200)


@given(st.floats(min_value=1, max_value=1e9),
       st.floats(min_value=1e8, max_value=5e9))
def test_roundtrip_within_rounding(cycles, freq):
    t = units.cycles_to_ns(cycles, freq)
    back = units.ns_to_cycles(t, freq)
    # One ns of rounding at freq Hz is freq/1e9 cycles.
    assert abs(back - cycles) <= freq / 1e9 + 1e-6
