"""Client timeout/retry machinery: RetryPolicy, open- and closed-loop."""

import pytest

from repro.nic.nic import MultiQueueNic
from repro.nic.packet import Packet
from repro.nic.rss import RssDistributor
from repro.sim.rng import RandomStreams
from repro.units import MS, US
from repro.workload.client import OpenLoopClient
from repro.workload.closed_loop import ClosedLoopClient
from repro.workload.retry import RetryPolicy
from repro.workload.shapes import ConstantLoad


def test_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(timeout_ns=0)
    with pytest.raises(ValueError):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_base_ns=-1)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_factor=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_cap_ns=0)


def test_backoff_grows_exponentially_then_caps():
    policy = RetryPolicy(backoff_base_ns=100, backoff_factor=2.0,
                         backoff_cap_ns=350)
    assert policy.backoff_ns(0) == 100
    assert policy.backoff_ns(1) == 200
    assert policy.backoff_ns(2) == 350  # capped
    assert policy.backoff_ns(10) == 350


@pytest.fixture
def nic(sim):
    nic = MultiQueueNic(sim, n_queues=1,
                        rss=RssDistributor(1, mode="round-robin"),
                        wire_latency_ns=5 * US)
    nic.bind(0, lambda q: None)
    nic.disable_irq(0)  # just collect packets
    return nic


def _make_client(sim, nic, retry, rps=5_000):
    return OpenLoopClient(sim, nic, ConstantLoad(rps),
                          RandomStreams(4).numpy_stream("client"),
                          wire_latency_ns=5 * US, retry=retry)


def test_unanswered_requests_time_out_retry_then_give_up(sim, nic):
    retry = RetryPolicy(timeout_ns=1 * MS, max_retries=2,
                        backoff_base_ns=100 * US)
    client = _make_client(sim, nic, retry)
    client.start(10 * MS)
    sim.run_until(100 * MS)  # nobody ever responds
    assert client.sent > 0
    assert client.retries == 2 * client.sent
    assert client.gave_up == client.sent
    assert client.timed_out == 3 * client.sent  # original + 2 retries
    assert client.completed == 0


def test_response_before_timeout_cancels_the_timer(sim, nic):
    retry = RetryPolicy(timeout_ns=5 * MS, max_retries=2)
    client = _make_client(sim, nic, retry)
    client.feed_arrivals([0])
    sim.run_until(1 * MS)
    pkt = nic.queues[0].pop_rx()
    client.on_response(Packet(flow_id=pkt.flow_id, size_bytes=64,
                              created_ns=sim.now, request=pkt.request))
    sim.run_until(50 * MS)
    assert client.completed == 1
    assert client.timed_out == 0
    assert client.retries == 0


def test_duplicate_responses_are_discarded(sim, nic):
    retry = RetryPolicy(timeout_ns=5 * MS)
    client = _make_client(sim, nic, retry)
    client.feed_arrivals([0])
    sim.run_until(1 * MS)
    pkt = nic.queues[0].pop_rx()
    response = Packet(flow_id=pkt.flow_id, size_bytes=64,
                      created_ns=sim.now, request=pkt.request)
    client.on_response(response)
    client.on_response(response)  # a retransmission's answer, late
    assert client.completed == 1
    assert client.duplicates == 1


def test_retried_latency_is_anchored_at_original_creation(sim, nic):
    retry = RetryPolicy(timeout_ns=1 * MS, max_retries=3,
                        backoff_base_ns=100 * US)
    client = _make_client(sim, nic, retry)
    client.feed_arrivals([0])
    sim.run_until(3 * MS)  # first attempt timed out, retransmitted
    assert client.retries >= 1
    # Answer the retransmitted copy.
    pkt = nic.queues[0].pop_rx()  # original attempt
    retransmit = nic.queues[0].pop_rx()
    assert retransmit.request is pkt.request
    client.on_response(Packet(flow_id=retransmit.flow_id, size_bytes=64,
                              created_ns=sim.now,
                              request=retransmit.request))
    # Latency covers the failed attempt too: anchored at creation (t=0).
    assert client.latencies_ns()[0] == sim.now


def test_retry_none_arms_no_timers(sim, nic):
    client = _make_client(sim, nic, None)
    client.start(20 * MS)
    sim.run_until(200 * MS)  # far past any would-be timeout
    assert client.sent > 0
    assert client.timed_out == 0
    assert client.retries == 0
    assert client.gave_up == 0


def test_closed_loop_timeouts_keep_chains_alive(sim, nic):
    retry = RetryPolicy(timeout_ns=1 * MS, max_retries=1,
                        backoff_base_ns=100 * US)
    client = ClosedLoopClient(sim, nic, concurrency=4,
                              rng=RandomStreams(4).numpy_stream("client"),
                              wire_latency_ns=5 * US, retry=retry)
    client.start(50 * MS)
    sim.run_until(100 * MS)  # nobody responds: every chain churns
    # Without the give-up-respawn, sent would stay at 4 forever.
    assert client.sent > 4
    assert client.gave_up > 0


def test_closed_loop_duplicate_responses_are_discarded(sim, nic):
    retry = RetryPolicy(timeout_ns=5 * MS)
    client = ClosedLoopClient(sim, nic, concurrency=1,
                              rng=RandomStreams(4).numpy_stream("client"),
                              wire_latency_ns=5 * US, retry=retry)
    client.start(10 * MS)
    sim.run_until(1 * MS)
    pkt = nic.queues[0].pop_rx()
    response = Packet(flow_id=pkt.flow_id, size_bytes=64,
                      created_ns=sim.now, request=pkt.request)
    client.on_response(response)
    client.on_response(response)
    assert client.completed == 1
    assert client.duplicates == 1
