"""Closed-loop client, and the open-vs-closed measurement contrast."""

import pytest

from repro.system import ServerConfig, ServerSystem
from repro.units import MS
from repro.workload.closed_loop import ClosedLoopClient


def build_system(seed=12):
    config = ServerConfig(app="memcached", load_level="low",
                          freq_governor="powersave", n_cores=1, seed=seed)
    return ServerSystem(config)


def attach_closed_loop(system, concurrency):
    client = ClosedLoopClient(system.sim, system.nic, concurrency,
                              rng=None,
                              request_factory=system.app.request_factory())
    system.stack.response_sink = client.on_response
    return client


def test_maintains_concurrency_and_completes():
    system = build_system()
    client = attach_closed_loop(system, concurrency=4)
    client.start(50 * MS)
    system.sim.run_until(60 * MS)
    assert client.completed > 100
    # In-flight never exceeds concurrency.
    assert client.sent - client.completed <= 4


def test_self_throttles_under_overload():
    """The methodological point: closed-loop hides queueing collapse."""
    # Overloaded Pmin core (powersave) at high open-loop rate explodes;
    # the closed-loop client instead converges to service-rate throughput
    # with bounded latency.
    system = build_system()
    client = attach_closed_loop(system, concurrency=2)
    client.start(100 * MS)
    system.sim.run_until(120 * MS)
    latencies = client.latencies_ns()
    # Bounded: ~2 requests' worth of service + stack, far below the
    # multi-ms open-loop tails of an overloaded powersave core.
    assert latencies.max() < 1 * MS
    # Throughput is pinned near the service capacity, not the offered load.
    assert 0 < client.throughput_rps(100 * MS) < 200_000


def test_think_time_slows_issue_rate():
    fast_system = build_system()
    fast = attach_closed_loop(fast_system, 1)
    fast.start(50 * MS)
    fast_system.sim.run_until(60 * MS)

    slow_system = build_system()
    slow = ClosedLoopClient(slow_system.sim, slow_system.nic, 1, rng=None,
                            request_factory=slow_system.app.request_factory(),
                            think_time_ns=1 * MS)
    slow_system.stack.response_sink = slow.on_response
    slow.start(50 * MS)
    slow_system.sim.run_until(60 * MS)
    assert slow.completed < fast.completed


def test_stop_halts_chains():
    system = build_system()
    client = attach_closed_loop(system, 2)
    client.start(50 * MS)
    system.sim.run_until(10 * MS)
    client.stop()
    sent = client.sent
    system.sim.run_until(60 * MS)
    assert client.sent == sent


def test_validation():
    with pytest.raises(ValueError):
        ClosedLoopClient(None, None, 0, None)
    with pytest.raises(ValueError):
        ClosedLoopClient(None, None, 1, None, think_time_ns=-1)


def test_completion_after_deadline_does_not_reissue():
    system = build_system()
    client = attach_closed_loop(system, 1)
    client.start(10 * MS)
    system.sim.run_until(50 * MS)
    sent = client.sent
    # Everything in flight has drained; the chain died at the deadline.
    assert client.sent - client.completed == 0
    system.sim.run_until(80 * MS)
    assert client.sent == sent


def test_zero_think_time_reissues_at_completion_instant():
    system = build_system()
    client = attach_closed_loop(system, 1)
    client.start(50 * MS)
    system.sim.run_until(60 * MS)
    # With zero think time the next request is created the instant the
    # previous response lands: no inter-chain gap beyond service+stack.
    assert client.sent == client.completed  # one extra in flight at most
    assert client.completed > 50


def test_think_time_longer_than_run_sends_once_per_chain():
    system = build_system()
    client = ClosedLoopClient(system.sim, system.nic, 3, rng=None,
                              request_factory=system.app.request_factory(),
                              think_time_ns=200 * MS)
    system.stack.response_sink = client.on_response
    client.start(50 * MS)
    system.sim.run_until(100 * MS)
    assert client.sent == 3
    assert client.completed == 3


def test_response_without_request_is_ignored():
    from repro.nic.packet import Packet
    system = build_system()
    client = attach_closed_loop(system, 1)
    client.start(10 * MS)
    before = client.completed
    client.on_response(Packet(flow_id=1, size_bytes=64, created_ns=0))
    assert client.completed == before


def test_throughput_requires_positive_duration():
    system = build_system()
    client = attach_closed_loop(system, 1)
    with pytest.raises(ValueError):
        client.throughput_rps(0)
