"""Load shapes and arrival generation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.rng import RandomStreams
from repro.units import MS, S
from repro.workload.shapes import (BurstLoad, ConstantLoad, PiecewiseLoad,
                                   ScaledLoad, generate_arrivals)


def rng():
    return RandomStreams(9).numpy_stream("arrivals")


def test_constant_load_rate():
    shape = ConstantLoad(1000.0)
    assert shape.rate_at(0) == 1000.0
    assert shape.mean_rps() == 1000.0


def test_constant_load_arrival_count():
    shape = ConstantLoad(50_000.0)
    arrivals = generate_arrivals(shape, 1 * S, rng())
    assert arrivals.size == pytest.approx(50_000, rel=0.05)


def test_arrivals_sorted_and_in_range():
    shape = BurstLoad(peak_rps=100_000, period_ns=100 * MS, duty=0.5)
    arrivals = generate_arrivals(shape, 300 * MS, rng())
    assert (np.diff(arrivals) >= 0).all()
    assert arrivals[0] >= 0 and arrivals[-1] < 300 * MS


def test_burst_mean_rate_formula():
    shape = BurstLoad(peak_rps=100_000, period_ns=100 * MS, duty=0.4,
                      rise_frac=0.2)
    assert shape.mean_rps() == pytest.approx(100_000 * 0.4 * 0.8)


def test_burst_arrival_count_matches_mean():
    shape = BurstLoad(peak_rps=100_000, period_ns=100 * MS, duty=0.4)
    arrivals = generate_arrivals(shape, 1 * S, rng())
    assert arrivals.size == pytest.approx(shape.mean_rps(), rel=0.05)


def test_burst_idle_gap_has_no_arrivals():
    shape = BurstLoad(peak_rps=100_000, period_ns=100 * MS, duty=0.3,
                      rise_frac=0.0)
    arrivals = generate_arrivals(shape, 1 * S, rng())
    phase = (arrivals % (100 * MS)) / (100 * MS)
    assert (phase <= 0.3 + 1e-9).all()


def test_burst_rate_envelope():
    shape = BurstLoad(peak_rps=1000, period_ns=100 * MS, duty=0.5,
                      rise_frac=0.2)
    # Mid-burst plateau at peak; mid-ramp at half peak; gap at zero.
    assert shape.rate_at(25 * MS) == pytest.approx(1000)
    assert shape.rate_at(5 * MS) == pytest.approx(500)
    assert shape.rate_at(80 * MS) == 0.0


def test_burst_vectorized_matches_scalar():
    shape = BurstLoad(peak_rps=1000, period_ns=100 * MS, duty=0.5)
    times = np.arange(0, 200 * MS, 7 * MS, dtype=float)
    vec = shape.rate_at(times)
    scalars = np.array([shape.rate_at(float(t)) for t in times])
    assert np.allclose(vec, scalars)


def test_scaled_load():
    base = ConstantLoad(1000.0)
    scaled = ScaledLoad(base, 4)
    assert scaled.mean_rps() == 4000.0
    assert scaled.peak_rps == 4000.0
    assert scaled.rate_at(123) == 4000.0


def test_piecewise_load_switches_segments():
    shape = PiecewiseLoad([(0, ConstantLoad(100.0)),
                           (1 * S, ConstantLoad(900.0))])
    assert shape.rate_at(0.5 * S) == 100.0
    assert shape.rate_at(1.5 * S) == 900.0
    assert shape.peak_rps == 900.0


def test_piecewise_segment_relative_time():
    burst = BurstLoad(peak_rps=1000, period_ns=100 * MS, duty=0.5,
                      rise_frac=0.0)
    shape = PiecewiseLoad([(0, ConstantLoad(0.0001)), (1 * S, burst)])
    # The burst restarts at the segment boundary: 1s + 25ms is mid-burst.
    assert shape.rate_at(1 * S + 25 * MS) == pytest.approx(1000)


def test_validation():
    with pytest.raises(ValueError):
        BurstLoad(peak_rps=0)
    with pytest.raises(ValueError):
        BurstLoad(peak_rps=10, duty=0)
    with pytest.raises(ValueError):
        BurstLoad(peak_rps=10, rise_frac=0.5)
    with pytest.raises(ValueError):
        PiecewiseLoad([])
    with pytest.raises(ValueError):
        PiecewiseLoad([(10, ConstantLoad(1)), (0, ConstantLoad(1))])
    with pytest.raises(ValueError):
        ScaledLoad(ConstantLoad(1), 0)
    with pytest.raises(ValueError):
        generate_arrivals(ConstantLoad(1), 0, rng())


def test_zero_rate_yields_no_arrivals():
    assert generate_arrivals(ConstantLoad(0.0), 1 * S, rng()).size == 0


@settings(max_examples=20, deadline=None)
@given(st.floats(min_value=1_000, max_value=200_000),
       st.floats(min_value=0.1, max_value=1.0),
       st.floats(min_value=0.0, max_value=0.4))
def test_arrival_counts_track_mean_property(peak, duty, rise):
    shape = BurstLoad(peak_rps=peak, period_ns=50 * MS, duty=duty,
                      rise_frac=rise)
    arrivals = generate_arrivals(shape, 500 * MS, rng())
    expected = shape.mean_rps() * 0.5
    assert arrivals.size == pytest.approx(expected, rel=0.25, abs=30)


def test_piecewise_boundary_instant_belongs_to_new_segment():
    """At the exact switch instant the new segment owns the rate, and
    its shape is evaluated at relative time 0 (bursts restart)."""
    burst = BurstLoad(peak_rps=10_000, period_ns=10 * MS, duty=0.5,
                      rise_frac=0.2, phase_ns=3 * MS)
    shape = PiecewiseLoad([(0, ConstantLoad(500.0)), (7 * MS, burst)])
    assert shape.rate_at(7 * MS - 1) == 500.0
    assert shape.rate_at(7 * MS) == burst.rate_at(0)
    assert shape.rate_at(7 * MS + 1 * MS) == burst.rate_at(1 * MS)


def test_piecewise_zero_duration_segment_never_contributes():
    """Two segments starting at the same instant: the later one wins
    from that instant on; the zero-length one is dead."""
    shape = PiecewiseLoad([(0, ConstantLoad(100.0)),
                           (5 * MS, ConstantLoad(999.0)),
                           (5 * MS, ConstantLoad(200.0))])
    assert shape.rate_at(5 * MS - 1) == 100.0
    assert shape.rate_at(5 * MS) == 200.0
    assert shape.rate_at(20 * MS) == 200.0
    assert not np.any(shape.rate_at(np.arange(0, 20 * MS, MS)) == 999.0)


def test_piecewise_before_first_segment_clamps_to_it():
    shape = PiecewiseLoad([(2 * MS, ConstantLoad(300.0))])
    assert shape.rate_at(0) == 300.0


def test_burst_ramp_boundary_instants():
    """Rate at the exact corners of the trapezoid: zero at burst start,
    peak at end-of-rise, zero again from the burst's end."""
    peak, period = 10_000.0, 10 * MS
    shape = BurstLoad(peak_rps=peak, period_ns=period, duty=0.5,
                      rise_frac=0.25)
    burst_len = 0.5 * period
    assert shape.rate_at(0) == 0.0
    assert shape.rate_at(int(0.25 * burst_len)) == peak
    assert shape.rate_at(int(0.75 * burst_len)) == peak  # start of fall
    assert shape.rate_at(int(burst_len)) == 0.0
    assert shape.rate_at(period - 1) == 0.0
    assert shape.rate_at(period) == 0.0  # wraps to the next burst start
