"""Open-loop client."""

import pytest

from repro.nic.nic import MultiQueueNic
from repro.nic.packet import Packet
from repro.nic.rss import RssDistributor
from repro.sim.rng import RandomStreams
from repro.units import MS, US
from repro.workload.client import OpenLoopClient
from repro.workload.shapes import ConstantLoad


@pytest.fixture
def nic(sim):
    nic = MultiQueueNic(sim, n_queues=1,
                        rss=RssDistributor(1, mode="round-robin"),
                        wire_latency_ns=5 * US)
    nic.bind(0, lambda q: None)
    nic.disable_irq(0)  # just collect packets
    return nic


def make_client(sim, nic, rps=10_000, seed=4):
    return OpenLoopClient(sim, nic, ConstantLoad(rps),
                          RandomStreams(seed).numpy_stream("client"),
                          wire_latency_ns=5 * US)


def test_sends_expected_count(sim, nic):
    client = make_client(sim, nic)
    n = client.start(100 * MS)
    sim.run_until(200 * MS)
    assert client.sent == n
    assert nic.rx_packets == n
    assert n == pytest.approx(1000, rel=0.2)


def test_packets_carry_requests_with_creation_times(sim, nic):
    client = make_client(sim, nic)
    client.start(50 * MS)
    sim.run_until(100 * MS)
    pkt = nic.queues[0].pop_rx()
    assert pkt.request is not None
    # The packet reached the NIC one wire latency after creation.
    assert pkt.request.created_ns == pkt.created_ns


def test_on_response_records_latency(sim, nic):
    client = make_client(sim, nic)
    client.start(50 * MS)
    sim.run_until(100 * MS)
    pkt = nic.queues[0].pop_rx()
    sim.run_until(sim.now + 1 * MS)
    client.on_response(Packet(flow_id=pkt.flow_id, size_bytes=64,
                              created_ns=sim.now, request=pkt.request))
    latencies = client.latencies_ns()
    assert latencies.size == 1
    assert latencies[0] == sim.now - pkt.request.created_ns
    assert client.completed == 1


def test_response_without_request_is_ignored(sim, nic):
    client = make_client(sim, nic)
    client.on_response(Packet(flow_id=0, size_bytes=64, created_ns=0))
    assert client.completed == 0


def test_open_loop_never_blocks_on_responses(sim, nic):
    client = make_client(sim, nic)
    client.start(100 * MS)
    sim.run_until(200 * MS)
    # No responses were ever sent, yet every request went out.
    assert client.sent > 0
    assert client.completed == 0


def test_completion_times_align_with_latencies(sim, nic):
    client = make_client(sim, nic)
    client.start(20 * MS)
    sim.run_until(50 * MS)
    for _ in range(3):
        pkt = nic.queues[0].pop_rx()
        client.on_response(Packet(flow_id=0, size_bytes=64,
                                  created_ns=sim.now, request=pkt.request))
    assert client.completion_times_ns().size == client.latencies_ns().size


# -- feed_arrivals: the fleet-embedding mode ------------------------------- #

def test_feed_arrivals_delivers_like_a_schedule(sim, nic):
    client = make_client(sim, nic)
    client.feed_arrivals([0, 1 * MS, 2 * MS])
    sim.run_until(10 * MS)
    assert client.sent == 3
    assert nic.rx_packets == 3


def test_feed_arrivals_rejects_out_of_order_batches(sim, nic):
    client = make_client(sim, nic)
    client.feed_arrivals([0, 2 * MS])
    with pytest.raises(ValueError, match="time order"):
        client.feed_arrivals([1 * MS])


def test_feed_arrivals_rearms_a_drained_doorbell(sim, nic):
    client = make_client(sim, nic)
    client.feed_arrivals([1 * MS])
    sim.run_until(5 * MS)
    assert client.sent == 1
    client.feed_arrivals([6 * MS])  # schedule was exhausted: must re-arm
    sim.run_until(10 * MS)
    assert client.sent == 2
    assert nic.rx_packets == 2


def test_feed_arrivals_while_armed_extends_without_double_arming(sim, nic):
    client = make_client(sim, nic)
    client.feed_arrivals([5 * MS])
    client.feed_arrivals([6 * MS])  # doorbell still pending
    sim.run_until(10 * MS)
    assert client.sent == 2
    assert nic.rx_packets == 2


def test_feed_arrivals_legacy_event_path(sim, nic):
    client = OpenLoopClient(sim, nic, ConstantLoad(1000),
                            RandomStreams(4).numpy_stream("client"),
                            wire_latency_ns=5 * US, batch_arrivals=False)
    client.feed_arrivals([0, 1 * MS])
    sim.run_until(5 * MS)
    client.feed_arrivals([6 * MS])
    sim.run_until(10 * MS)
    assert client.sent == 3
    assert nic.rx_packets == 3


def test_feed_empty_batch_is_a_noop(sim, nic):
    client = make_client(sim, nic)
    client.feed_arrivals([])
    sim.run_until(1 * MS)
    assert client.sent == 0
