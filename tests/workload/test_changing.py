"""Changing-load generator (Fig. 16)."""

import numpy as np
import pytest

from repro.sim.rng import RandomStreams
from repro.units import MS, S
from repro.workload.changing import make_changing_load
from repro.workload.profiles import MEMCACHED_LEVELS


def rng():
    return RandomStreams(3).numpy_stream("x")


def test_segment_count_covers_duration():
    shape = make_changing_load(MEMCACHED_LEVELS, 3 * S,
                               switch_period_ns=500 * MS, rng=rng())
    assert len(shape.segments) == 6


def test_consecutive_segments_differ():
    shape = make_changing_load(MEMCACHED_LEVELS, 10 * S,
                               switch_period_ns=500 * MS, rng=rng())
    peaks = [seg.peak_rps for _, seg in shape.segments]
    assert all(a != b for a, b in zip(peaks, peaks[1:]))


def test_deterministic_under_seed():
    a = make_changing_load(MEMCACHED_LEVELS, 5 * S, rng=rng())
    b = make_changing_load(MEMCACHED_LEVELS, 5 * S, rng=rng())
    assert [s.peak_rps for _, s in a.segments] \
        == [s.peak_rps for _, s in b.segments]


def test_rates_come_from_level_shapes():
    shape = make_changing_load(MEMCACHED_LEVELS, 2 * S,
                               switch_period_ns=1 * S, rng=rng())
    level_peaks = {MEMCACHED_LEVELS.level(n).peak_rps_per_core
                   for n in ("low", "medium", "high")}
    assert {seg.peak_rps for _, seg in shape.segments} <= level_peaks


def test_validation():
    with pytest.raises(ValueError):
        make_changing_load(MEMCACHED_LEVELS, 0)
    with pytest.raises(ValueError):
        make_changing_load(MEMCACHED_LEVELS, 1 * S, level_names=["low"])
