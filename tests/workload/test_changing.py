"""Changing-load generator (Fig. 16)."""

import numpy as np
import pytest

from repro.sim.rng import RandomStreams
from repro.units import MS, S
from repro.workload.changing import make_changing_load
from repro.workload.profiles import MEMCACHED_LEVELS


def rng():
    return RandomStreams(3).numpy_stream("x")


def test_segment_count_covers_duration():
    shape = make_changing_load(MEMCACHED_LEVELS, 3 * S,
                               switch_period_ns=500 * MS, rng=rng())
    assert len(shape.segments) == 6


def test_consecutive_segments_differ():
    shape = make_changing_load(MEMCACHED_LEVELS, 10 * S,
                               switch_period_ns=500 * MS, rng=rng())
    peaks = [seg.peak_rps for _, seg in shape.segments]
    assert all(a != b for a, b in zip(peaks, peaks[1:]))


def test_deterministic_under_seed():
    a = make_changing_load(MEMCACHED_LEVELS, 5 * S, rng=rng())
    b = make_changing_load(MEMCACHED_LEVELS, 5 * S, rng=rng())
    assert [s.peak_rps for _, s in a.segments] \
        == [s.peak_rps for _, s in b.segments]


def test_rates_come_from_level_shapes():
    shape = make_changing_load(MEMCACHED_LEVELS, 2 * S,
                               switch_period_ns=1 * S, rng=rng())
    level_peaks = {MEMCACHED_LEVELS.level(n).peak_rps_per_core
                   for n in ("low", "medium", "high")}
    assert {seg.peak_rps for _, seg in shape.segments} <= level_peaks


def test_validation():
    with pytest.raises(ValueError):
        make_changing_load(MEMCACHED_LEVELS, 0)
    with pytest.raises(ValueError):
        make_changing_load(MEMCACHED_LEVELS, 1 * S, level_names=["low"])


def test_switch_boundary_restarts_new_level_at_relative_zero():
    shape = make_changing_load(MEMCACHED_LEVELS, 2 * S,
                               switch_period_ns=500 * MS, rng=rng())
    for start, segment in shape.segments[1:]:
        assert shape.rate_at(start) == segment.rate_at(0)


def test_duration_not_multiple_of_period_truncates_last_segment():
    shape = make_changing_load(MEMCACHED_LEVELS, 1_200 * MS,
                               switch_period_ns=500 * MS, rng=rng())
    assert len(shape.segments) == 3  # 0, 500, 1000 ms
    assert shape.segments[-1][0] == 1_000 * MS


def test_period_at_least_duration_yields_single_segment():
    exact = make_changing_load(MEMCACHED_LEVELS, 500 * MS,
                               switch_period_ns=500 * MS, rng=rng())
    longer = make_changing_load(MEMCACHED_LEVELS, 500 * MS,
                                switch_period_ns=2 * S, rng=rng())
    assert len(exact.segments) == 1
    assert len(longer.segments) == 1


def test_zero_and_negative_periods_rejected():
    with pytest.raises(ValueError):
        make_changing_load(MEMCACHED_LEVELS, 1 * S, switch_period_ns=0)
    with pytest.raises(ValueError):
        make_changing_load(MEMCACHED_LEVELS, 1 * S, switch_period_ns=-1)
    with pytest.raises(ValueError):
        make_changing_load(MEMCACHED_LEVELS, -1 * S)


def test_two_level_pool_alternates_strictly():
    shape = make_changing_load(MEMCACHED_LEVELS, 3 * S,
                               switch_period_ns=500 * MS, rng=rng(),
                               level_names=("low", "high"))
    peaks = [seg.peak_rps for _, seg in shape.segments]
    assert len(set(peaks)) == 2
    assert all(a != b for a, b in zip(peaks, peaks[1:]))
