"""Canonical workload profiles."""

import pytest

from repro.workload.profiles import (LEVELS, MEMCACHED_LEVELS, NGINX_LEVELS,
                                     levels_for)


def test_levels_exist_for_both_apps():
    for profile in (MEMCACHED_LEVELS, NGINX_LEVELS):
        assert set(profile.levels) == set(LEVELS)


def test_paper_totals_recorded():
    assert MEMCACHED_LEVELS.paper_total_rps == {
        "low": 30_000, "medium": 290_000, "high": 750_000}
    assert NGINX_LEVELS.paper_total_rps == {
        "low": 18_000, "medium": 48_000, "high": 56_000}


def test_per_core_rates_are_one_eighth_of_paper_totals():
    for profile in (MEMCACHED_LEVELS, NGINX_LEVELS):
        for name, total in profile.paper_total_rps.items():
            assert profile.level(name).mean_rps_per_core \
                == pytest.approx(total / 8)


def test_mean_rates_increase_with_level():
    for profile in (MEMCACHED_LEVELS, NGINX_LEVELS):
        means = [profile.level(n).mean_rps_per_core for n in LEVELS]
        assert means == sorted(means)


def test_duty_within_bounds():
    for profile in (MEMCACHED_LEVELS, NGINX_LEVELS):
        for name in LEVELS:
            assert 0 < profile.level(name).duty <= 1


def test_shape_mean_matches_level_mean():
    level = MEMCACHED_LEVELS.level("high")
    assert level.shape().mean_rps() == pytest.approx(
        level.mean_rps_per_core, rel=1e-6)


def test_unknown_level_and_app_rejected():
    with pytest.raises(ValueError):
        MEMCACHED_LEVELS.level("extreme")
    with pytest.raises(ValueError):
        levels_for("postgres")


def test_levels_for():
    assert levels_for("memcached") is MEMCACHED_LEVELS
    assert levels_for("nginx") is NGINX_LEVELS
