"""Flow-count control of the RSS spread."""

import pytest

from repro.system import ServerConfig, ServerSystem
from repro.units import MS
from repro.workload.client import OpenLoopClient


def split(n_flows, seed=2):
    config = ServerConfig(app="memcached", load_level="low",
                          freq_governor="performance", n_cores=2,
                          seed=seed, n_flows=n_flows)
    system = ServerSystem(config)
    system.run(100 * MS)
    return [w.requests_served for w in system.workers]


def test_default_spread_is_near_uniform():
    counts = split(None)
    assert min(counts) > 0.4 * sum(counts)


def test_few_flows_skew_the_spread():
    counts = split(5)
    assert max(counts) > 0.55 * sum(counts)


def test_flow_ids_cycle_through_n_flows():
    config = ServerConfig(app="memcached", load_level="low", n_cores=1,
                          freq_governor="performance", seed=2, n_flows=3)
    system = ServerSystem(config)
    result = system.run(50 * MS)
    assert result.completed > 0


def test_invalid_flow_count():
    with pytest.raises(ValueError):
        OpenLoopClient(None, None, None, None, n_flows=0)
