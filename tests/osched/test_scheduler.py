"""Round-robin task scheduler."""

import pytest

from repro.cpu.core import PRIORITY_SOFTIRQ, PRIORITY_TASK, Work
from repro.osched.scheduler import CoreScheduler
from repro.osched.thread import RUNNABLE, RUNNING, SLEEPING, CallbackThread
from repro.units import MS, US


def make_thread(name, chunks):
    """A thread that produces `chunks` works then sleeps."""
    supply = list(chunks)

    def next_work():
        if supply:
            return Work(supply.pop(0), PRIORITY_TASK, label=name)
        return None

    return CallbackThread(name, next_work)



def one_shot_thread(name, work):
    """A thread that yields one Work then sleeps forever."""
    box = [work]

    def supply():
        return box.pop() if box else None

    return CallbackThread(name, supply)

@pytest.fixture
def sched(sim, core):
    return CoreScheduler(sim, core, timeslice_ns=1 * MS)


def test_wake_runs_thread_to_completion(sim, sched):
    t = make_thread("a", [3200, 3200])
    sched.add_thread(t)
    t.wake()
    assert t.state == RUNNING
    sim.run_until(1 * MS)
    assert t.state == SLEEPING
    assert t.sleep_count == 1


def test_two_threads_share_in_round_robin(sim, sched):
    order = []

    def make(name):
        count = [3]

        def supply():
            if count[0] == 0:
                return None
            count[0] -= 1
            return Work(3200, PRIORITY_TASK,
                        on_complete=lambda w: order.append(name))

        return CallbackThread(name, supply)

    a, b = make("a"), make("b")
    sched.add_thread(a)
    sched.add_thread(b)
    a.wake()
    b.wake()
    sim.run_until(10 * MS)
    assert order == ["a", "b", "a", "b", "a", "b"]


def test_timeslice_preempts_long_running_thread(sim, core, sched):
    order = []
    long_thread = one_shot_thread("long", Work(
        32_000_000, PRIORITY_TASK,  # 10 ms at P0
        on_complete=lambda w: order.append("long")))
    short = make_thread("short", [3200])
    short.next_work_orig = short._supply

    def short_supply():
        w = short.next_work_orig()
        if w is not None:
            w.on_complete = lambda _: order.append("short")
        return w

    short._supply = short_supply
    sched.add_thread(long_thread)
    sched.add_thread(short)
    long_thread.wake()
    sim.run_until(100 * US)
    short.wake()
    sim.run_until(20 * MS)
    # The short thread got the CPU at the next slice boundary, well before
    # the long work finished.
    assert order == ["short", "long"]
    assert sched.preemptions >= 1


def test_sole_thread_is_not_preempted(sim, sched):
    done = []
    t = one_shot_thread("solo", Work(
        32_000_000, PRIORITY_TASK,
        on_complete=lambda w: done.append(sim.now)))
    sched.add_thread(t)
    t.wake()
    sim.run_until(20 * MS)
    assert done == [10 * MS]
    assert sched.preemptions == 0


def test_wake_while_runnable_is_noop(sim, sched):
    t = make_thread("a", [320_000])
    sched.add_thread(t)
    t.wake()
    t.wake()
    assert t.wake_count == 1


def test_softirq_preemption_is_transparent_to_scheduler(sim, core, sched):
    done = []
    t = one_shot_thread("app", Work(
        3_200_000, PRIORITY_TASK,  # 1 ms
        on_complete=lambda w: done.append(sim.now)))
    sched.add_thread(t)
    t.wake()
    sim.run_until(100 * US)
    core.submit(Work(320_000, PRIORITY_SOFTIRQ))  # 100 µs of softirq
    sim.run_until(10 * MS)
    # The task work completes 100 µs later than it would have.
    assert done[0] == pytest.approx(1.1 * MS, abs=2 * US)


def test_thread_cannot_attach_twice(sim, core, sched):
    t = make_thread("a", [])
    sched.add_thread(t)
    with pytest.raises(ValueError):
        sched.add_thread(t)


def test_foreign_thread_wake_rejected(sim, core, sched):
    other = CoreScheduler(sim, core, timeslice_ns=1 * MS)
    t = make_thread("a", [100])
    other.add_thread(t)
    with pytest.raises(ValueError):
        sched.wake(t)


def test_unattached_thread_wake_raises():
    t = make_thread("a", [100])
    with pytest.raises(RuntimeError):
        t.wake()


def test_scheduler_rejects_non_task_work(sim, sched):
    t = CallbackThread("bad", lambda: Work(100, PRIORITY_SOFTIRQ))
    sched.add_thread(t)
    with pytest.raises(ValueError):
        t.wake()
