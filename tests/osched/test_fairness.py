"""Scheduler fairness: the property NMAP-simpl's starvation story rests on.

ksoftirqd runs at the same priority as the application (Sec. 2.1), so
under sustained deferred packet processing each side gets about half the
CPU. These tests measure actual CPU shares.
"""

import pytest

from repro.cpu.core import PRIORITY_TASK, Work
from repro.osched.scheduler import CoreScheduler
from repro.osched.thread import CallbackThread
from repro.units import MS


class GreedyThread(CallbackThread):
    """Always has another fixed-size chunk; accumulates executed cycles."""

    def __init__(self, name, chunk_cycles):
        self.executed = 0.0

        def supply():
            return Work(chunk_cycles, PRIORITY_TASK,
                        on_complete=self._done, label=name)

        super().__init__(name, supply)
        self._chunk = chunk_cycles

    def _done(self, work):
        self.executed += self._chunk


def test_two_greedy_threads_split_cpu_evenly(sim, core):
    sched = CoreScheduler(sim, core, timeslice_ns=1 * MS)
    a, b = GreedyThread("a", 320_000), GreedyThread("b", 320_000)
    sched.add_thread(a)
    sched.add_thread(b)
    a.wake()
    b.wake()
    sim.run_until(100 * MS)
    total = a.executed + b.executed
    assert total > 0
    assert a.executed / total == pytest.approx(0.5, abs=0.02)


def test_unequal_chunk_sizes_still_fair(sim, core):
    """Round-robin per chunk: big-chunk threads get proportionally more
    per turn but turns alternate; with chunks far below the slice the
    imbalance is bounded by the chunk ratio."""
    sched = CoreScheduler(sim, core, timeslice_ns=1 * MS)
    small = GreedyThread("small", 160_000)
    big = GreedyThread("big", 480_000)
    sched.add_thread(small)
    sched.add_thread(big)
    small.wake()
    big.wake()
    sim.run_until(100 * MS)
    share = big.executed / (small.executed + big.executed)
    assert share == pytest.approx(0.75, abs=0.05)


def test_three_way_split(sim, core):
    sched = CoreScheduler(sim, core, timeslice_ns=1 * MS)
    threads = [GreedyThread(f"t{i}", 320_000) for i in range(3)]
    for t in threads:
        sched.add_thread(t)
        t.wake()
    sim.run_until(90 * MS)
    total = sum(t.executed for t in threads)
    for t in threads:
        assert t.executed / total == pytest.approx(1 / 3, abs=0.03)
