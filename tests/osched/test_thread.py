"""SimThread mechanics."""

import pytest

from repro.cpu.core import PRIORITY_TASK, Work
from repro.osched.thread import CallbackThread, SimThread


def test_base_thread_next_work_abstract():
    with pytest.raises(NotImplementedError):
        SimThread("x").next_work()


def test_park_rejects_double_park():
    t = CallbackThread("x", lambda: None)
    t.park(Work(10, PRIORITY_TASK))
    with pytest.raises(RuntimeError):
        t.park(Work(10, PRIORITY_TASK))


def test_listeners_fire_in_order():
    t = CallbackThread("x", lambda: None)
    order = []
    t.wake_listeners.append(lambda th: order.append("a"))
    t.wake_listeners.append(lambda th: order.append("b"))
    t.notify_wake()
    assert order == ["a", "b"]
    assert t.wake_count == 1


def test_sleep_listeners_and_count():
    t = CallbackThread("x", lambda: None)
    seen = []
    t.sleep_listeners.append(seen.append)
    t.notify_sleep()
    t.notify_sleep()
    assert seen == [t, t]
    assert t.sleep_count == 2
