"""CSV export helpers."""

import csv

import pytest

from repro.metrics.export import (export_latencies_csv,
                                  export_mode_series_csv, export_table_csv)
from repro.system import ServerConfig, ServerSystem
from repro.units import MS


@pytest.fixture(scope="module")
def traced_run():
    config = ServerConfig(app="memcached", load_level="low",
                          freq_governor="performance", n_cores=1, seed=14,
                          trace=True)
    return ServerSystem(config).run(50 * MS)


def read_csv(path):
    with open(path) as fh:
        return list(csv.reader(fh))


def test_export_latencies(traced_run, tmp_path):
    path = tmp_path / "lat.csv"
    n = export_latencies_csv(traced_run, str(path))
    rows = read_csv(path)
    assert rows[0] == ["completion_time_ns", "latency_ns"]
    assert len(rows) == n + 1
    assert n == traced_run.completed


def test_export_mode_series(traced_run, tmp_path):
    path = tmp_path / "modes.csv"
    n_bins = export_mode_series_csv(traced_run, 0, str(path))
    rows = read_csv(path)
    assert rows[0] == ["bin_start_ns", "interrupt_pkts", "polling_pkts"]
    assert len(rows) == n_bins + 1
    total = sum(float(r[1]) + float(r[2]) for r in rows[1:])
    assert total == (traced_run.pkts_interrupt_mode
                     + traced_run.pkts_polling_mode)


def test_export_table(tmp_path):
    path = tmp_path / "sub" / "table.csv"
    n = export_table_csv(["a", "b"], [[1, 2], [3, 4]], str(path))
    assert n == 2
    assert read_csv(path) == [["a", "b"], ["1", "2"], ["3", "4"]]


def test_export_table_validation(tmp_path):
    with pytest.raises(ValueError):
        export_table_csv([], [], str(tmp_path / "x.csv"))
    with pytest.raises(ValueError):
        export_table_csv(["a"], [[1, 2]], str(tmp_path / "y.csv"))
