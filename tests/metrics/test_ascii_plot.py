"""ASCII plotting helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.metrics.ascii_plot import BARS, mark_plot, sparkline, step_plot


def test_sparkline_extremes():
    line = sparkline([0, 5, 10])
    assert line[0] == BARS[0]
    assert line[-1] == BARS[-1]
    assert len(line) == 3


def test_sparkline_constant_series():
    assert sparkline([3, 3, 3]) == BARS[0] * 3


def test_sparkline_empty():
    assert sparkline([]) == ""


def test_sparkline_explicit_bounds_clip():
    line = sparkline([100.0], lo=0.0, hi=10.0)
    assert line == BARS[-1]


def test_step_plot_shape():
    text = step_plot([1, 2, 3, 4], height=4, label="demo")
    lines = text.splitlines()
    assert lines[0].startswith("demo")
    assert len(lines) == 5
    assert all(len(line) == 4 for line in lines[1:])
    # The max value fills the full column; the min only the bottom row.
    assert lines[1][3] == "#"
    assert lines[1][0] == " "


def test_step_plot_validation():
    with pytest.raises(ValueError):
        step_plot([1, 2], height=1)


def test_mark_plot_positions():
    line = mark_plot([0, 50, 99.9], horizon=100, width=10)
    assert line[0] == "^"
    assert line[5] == "^"
    assert line[9] == "^"
    assert line.count("^") == 3


def test_mark_plot_out_of_range_ignored():
    line = mark_plot([-1, 150], horizon=100, width=10)
    assert line == " " * 10


def test_mark_plot_validation():
    with pytest.raises(ValueError):
        mark_plot([1], horizon=0)
    with pytest.raises(ValueError):
        mark_plot([1], horizon=10, width=0)


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False), min_size=1, max_size=200))
def test_sparkline_length_property(values):
    assert len(sparkline(values)) == len(values)
