"""Energy summaries and table rendering."""

import pytest

from repro.metrics.energy import EnergySummary, normalize_energy
from repro.metrics.report import format_table


def test_energy_summary_derivations():
    summary = EnergySummary(package_j=10.0, cores_j=6.0, duration_s=2.0)
    assert summary.uncore_j == pytest.approx(4.0)
    assert summary.average_power_w == pytest.approx(5.0)
    assert "5.0W" in summary.describe()


def test_energy_summary_zero_duration_rejected():
    summary = EnergySummary(package_j=1.0, cores_j=0.5, duration_s=0.0)
    with pytest.raises(ValueError):
        summary.average_power_w


def test_normalize_energy():
    out = normalize_energy({"perf": 10.0, "nmap": 7.0}, baseline="perf")
    assert out == {"perf": 1.0, "nmap": 0.7}


def test_normalize_energy_validation():
    with pytest.raises(KeyError):
        normalize_energy({"a": 1.0}, baseline="b")
    with pytest.raises(ValueError):
        normalize_energy({"a": 0.0}, baseline="a")


def test_format_table_alignment():
    text = format_table(["name", "value"],
                        [["nmap", 0.4321], ["performance", 1.0]],
                        title="demo")
    lines = text.splitlines()
    assert lines[0] == "demo"
    assert lines[1].startswith("name")
    assert "performance" in lines[4]


def test_format_table_row_width_mismatch():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [[1]])


def test_format_table_float_formatting():
    text = format_table(["x"], [[0.000123], [1234.5], [0.5], [0]])
    assert "0.000123" in text
    assert "0.500" in text
