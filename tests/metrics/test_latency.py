"""Latency metrics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.metrics.latency import (LatencyStats, cdf_points, fraction_over,
                                   percentile_ns)


def test_percentile_basic():
    lat = np.arange(1, 101)
    assert percentile_ns(lat, 50) == pytest.approx(50.5)
    assert percentile_ns(lat, 99) == pytest.approx(99.01)


def test_percentile_validation():
    with pytest.raises(ValueError):
        percentile_ns(np.array([]), 99)
    with pytest.raises(ValueError):
        percentile_ns(np.array([1]), 150)


def test_fraction_over():
    lat = np.array([1, 2, 3, 4, 5])
    assert fraction_over(lat, 3) == pytest.approx(0.4)
    assert fraction_over(lat, 0) == 1.0
    assert fraction_over(lat, 10) == 0.0


def test_cdf_points_monotonic():
    lat = np.random.default_rng(0).exponential(1000, size=500)
    x, y = cdf_points(lat, n_points=50)
    assert (np.diff(x) >= 0).all()
    assert (np.diff(y) >= 0).all()
    assert y[-1] == pytest.approx(1.0)


def test_cdf_small_sample():
    x, y = cdf_points(np.array([5.0, 1.0, 3.0]), n_points=100)
    assert x.tolist() == [1.0, 3.0, 5.0]


def test_latency_stats_summary():
    stats = LatencyStats.from_sample(np.arange(1, 1001))
    assert stats.count == 1000
    assert stats.mean_ns == pytest.approx(500.5)
    assert stats.max_ns == 1000
    assert "p99" in stats.describe()


@given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=1,
                max_size=500))
def test_percentile_bounds_property(latencies):
    lat = np.array(latencies)
    p99 = percentile_ns(lat, 99)
    assert lat.min() <= p99 <= lat.max()


@given(st.lists(st.integers(min_value=0, max_value=10**6), min_size=1,
                max_size=300),
       st.integers(min_value=0, max_value=10**6))
def test_fraction_over_matches_definition(latencies, threshold):
    lat = np.array(latencies)
    frac = fraction_over(lat, threshold)
    assert frac == pytest.approx(np.mean(lat > threshold))


def test_fraction_over_rejects_nan():
    """NaN compares False against any threshold, so it would silently
    deflate the SLO-violation fraction — reject instead."""
    with pytest.raises(ValueError, match="NaN"):
        fraction_over(np.array([1.0, np.nan, 3.0]), 2.0)


def test_fraction_over_accepts_lists():
    assert fraction_over([1, 2, 3, 4], 2) == pytest.approx(0.5)
