"""SLO checks and inflection-point detection."""

import numpy as np
import pytest

from repro.metrics.slo import check_slo, find_inflection_load
from repro.units import MS


def test_check_slo_satisfied():
    lat = np.full(1000, 0.5 * MS)
    result = check_slo(lat, 1 * MS)
    assert result.satisfied
    assert result.normalized_p99 == pytest.approx(0.5)
    assert result.violation_fraction == 0.0


def test_check_slo_violated():
    lat = np.concatenate([np.full(90, 0.1 * MS), np.full(10, 5 * MS)])
    result = check_slo(lat, 1 * MS)
    assert not result.satisfied
    assert result.violation_fraction == pytest.approx(0.1)


def test_check_slo_validation():
    with pytest.raises(ValueError):
        check_slo(np.array([1.0]), 0)


def test_inflection_point_on_hockey_stick():
    loads = [10, 20, 30, 40, 50, 60]
    p99s = [100, 105, 110, 120, 400, 5000]
    assert find_inflection_load(loads, p99s) == 40


def test_inflection_point_unsorted_input():
    loads = [60, 10, 40, 20, 50, 30]
    p99s = [5000, 100, 120, 105, 400, 110]
    assert find_inflection_load(loads, p99s) == 40


def test_inflection_flat_curve_returns_max_load():
    assert find_inflection_load([1, 2, 3], [10, 11, 10]) == 3


def test_inflection_validation():
    with pytest.raises(ValueError):
        find_inflection_load([1], [10])
    with pytest.raises(ValueError):
        find_inflection_load([1, 2], [10])
