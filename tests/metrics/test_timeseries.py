"""Time-series binning."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.metrics.timeseries import bin_counts, bin_last_value
from repro.units import MS


def test_bin_counts_unweighted():
    times = np.array([0, 100, 1_500_000, 1_600_000, 2_100_000])
    bins, sums = bin_counts(times, 3 * MS, 1 * MS)
    assert bins.tolist() == [0, 1 * MS, 2 * MS]
    assert sums.tolist() == [2, 2, 1]


def test_bin_counts_weighted():
    times = np.array([0, 1_500_000])
    weights = np.array([10.0, 5.0])
    _, sums = bin_counts(times, 2 * MS, 1 * MS, weights=weights)
    assert sums.tolist() == [10.0, 5.0]


def test_bin_counts_empty():
    _, sums = bin_counts(np.array([], dtype=np.int64), 2 * MS)
    assert sums.tolist() == [0, 0]


def test_bin_last_value_step_signal():
    times = np.array([500_000, 2_500_000])
    values = np.array([7.0, 3.0])
    _, out = bin_last_value(times, values, 4 * MS, 1 * MS, initial=15.0)
    assert out.tolist() == [7.0, 7.0, 3.0, 3.0]


def test_bin_last_value_no_events_uses_initial():
    _, out = bin_last_value(np.array([], dtype=np.int64), np.array([]),
                            2 * MS, 1 * MS, initial=9.0)
    assert out.tolist() == [9.0, 9.0]


def test_bin_last_value_unsorted_events():
    times = np.array([2_500_000, 500_000])
    values = np.array([3.0, 7.0])
    _, out = bin_last_value(times, values, 3 * MS, 1 * MS)
    assert out.tolist() == [7.0, 7.0, 3.0]


def test_validation():
    with pytest.raises(ValueError):
        bin_counts(np.array([1]), 0)
    with pytest.raises(ValueError):
        bin_last_value(np.array([1]), np.array([1.0]), 10, 0)


@given(st.lists(st.integers(min_value=0, max_value=10 * MS - 1),
                min_size=0, max_size=200))
def test_bin_counts_conserves_total(times):
    arr = np.array(sorted(times), dtype=np.int64)
    _, sums = bin_counts(arr, 10 * MS, 1 * MS)
    assert sums.sum() == len(times)
