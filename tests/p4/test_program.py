"""PipelineProgram validation, hashability, and cache-key coverage."""

import pytest

from repro.experiments.confighash import config_digest
from repro.p4 import (PipelineProgram, TableEntry, TableStage, chained,
                      drop_program, flow_affine_program, hash_rss_program,
                      identity_program, meter_program, size_class_of)
from repro.system import ServerConfig


# -- entry validation --------------------------------------------------- #

def test_entry_rejects_unknown_field_and_action():
    with pytest.raises(ValueError, match="unknown match field"):
        TableEntry(field="dscp", value=1, action="drop")
    with pytest.raises(ValueError, match="unknown action"):
        TableEntry(field="kind", value=1, action="recirculate")


def test_steer_entry_needs_queue_and_others_refuse_one():
    with pytest.raises(ValueError, match="needs a queue"):
        TableEntry(field="session", value=1, action="steer")
    with pytest.raises(ValueError, match="must not name a queue"):
        TableEntry(field="session", value=1, action="drop", queue=0)


def test_meter_entry_validation():
    with pytest.raises(ValueError, match="rate_pps"):
        TableEntry(field="kind", value=0, mask=0, action="meter",
                   burst_pkts=4)
    with pytest.raises(ValueError, match="burst_pkts"):
        TableEntry(field="kind", value=0, mask=0, action="meter",
                   rate_pps=100.0)
    with pytest.raises(ValueError, match="exceed_action"):
        TableEntry(field="kind", value=0, mask=0, action="meter",
                   rate_pps=100.0, burst_pkts=4, exceed_action="shape")
    with pytest.raises(ValueError, match="meter parameters"):
        TableEntry(field="kind", value=0, action="drop", rate_pps=5.0)


def test_masked_match_semantics():
    entry = TableEntry(field="flow_hash", value=0b1010, mask=0b0011,
                       action="drop")
    assert entry.matches(0b0110)      # low bits agree (10 == 10)
    assert not entry.matches(0b0111)  # low bits differ
    exact = TableEntry(field="session", value=7, action="drop")
    assert exact.matches(7) and not exact.matches(8)


def test_size_class_is_ceil_log2():
    assert [size_class_of(n) for n in (1, 2, 3, 64, 65, 1500)] == \
        [0, 1, 2, 6, 7, 11]


# -- stage / program validation ----------------------------------------- #

def test_stage_coerces_entries_and_validates():
    stage = TableStage(name="acl", entries=[
        TableEntry(field="session", value=1, action="drop")])
    assert isinstance(stage.entries, tuple)
    with pytest.raises(ValueError, match="miss_action"):
        TableStage(name="acl", miss_action="recirculate")
    with pytest.raises(ValueError, match="needs a name"):
        TableStage(name="")


def test_program_rejects_duplicate_stage_names_and_bad_knobs():
    stage = TableStage(name="t")
    with pytest.raises(ValueError, match="duplicate"):
        PipelineProgram(stages=(stage, TableStage(name="t")))
    with pytest.raises(ValueError, match="cost_model"):
        PipelineProgram(cost_model="fpga")
    with pytest.raises(ValueError, match="nic_hz"):
        PipelineProgram(nic_hz=0)


def test_truthiness_distinguishes_empty_from_identity():
    assert not PipelineProgram()
    assert identity_program()
    assert PipelineProgram(parser_cycles=1.0)


def test_max_steer_queue():
    assert PipelineProgram().max_steer_queue() == -1
    assert flow_affine_program(4, (3, 1, 1)).max_steer_queue() <= 3
    assert drop_program("session", [5]).max_steer_queue() == -1


def test_chained_concatenates_and_guards_cost_model():
    a = flow_affine_program(2, (2, 1), cycles_per_packet=5.0)
    b = meter_program(rate_pps=100.0, burst_pkts=4)
    combo = chained(a, b)
    assert combo.table_names() == ("flow_affinity", "meter")
    with pytest.raises(ValueError, match="share cost_model"):
        chained(a, meter_program(rate_pps=100.0, burst_pkts=4,
                                 cost_model="core"))
    assert chained() == PipelineProgram()
    assert chained(None, a) == a


# -- library builders --------------------------------------------------- #

def test_flow_affine_balances_by_weight():
    # Two elephants (w=10) and four mice must split across two queues:
    # greedy LPT puts one elephant per queue.
    prog = flow_affine_program(2, (10, 10, 1, 1, 1, 1))
    entries = prog.stages[0].entries
    assert entries[0].queue != entries[1].queue
    loads = [0.0, 0.0]
    for entry, w in zip(entries, (10, 10, 1, 1, 1, 1)):
        loads[entry.queue] += w
    assert abs(loads[0] - loads[1]) <= 1


def test_library_builders_validate():
    with pytest.raises(ValueError):
        flow_affine_program(0, (1,))
    with pytest.raises(ValueError):
        flow_affine_program(2, ())
    with pytest.raises(ValueError):
        flow_affine_program(2, (1, -1))
    with pytest.raises(ValueError):
        hash_rss_program(2, 0)
    with pytest.raises(ValueError):
        drop_program("session", [])


# -- hashability / cache keys ------------------------------------------- #

def test_programs_are_hashable_config_values():
    a = flow_affine_program(2, (3, 1))
    assert hash(a) == hash(flow_affine_program(2, (3, 1)))
    assert a == flow_affine_program(2, (3, 1))


def test_any_table_edit_changes_the_config_digest():
    base = ServerConfig(pipeline=flow_affine_program(2, (3, 1)))
    digests = {config_digest(base)}
    variants = [
        # (1, 3) reverses which session is the elephant, so the table's
        # *placement* changes (the program stores placements, not
        # weights — equal placements hash equal by design).
        base.with_overrides(pipeline=flow_affine_program(2, (1, 3))),
        base.with_overrides(pipeline=flow_affine_program(
            2, (3, 1), cycles_per_packet=1.0)),
        base.with_overrides(pipeline=flow_affine_program(
            2, (3, 1), cost_model="core")),
        base.with_overrides(pipeline=None),
        base.with_overrides(pipeline=PipelineProgram()),
        base.with_overrides(flow_weights=(3, 1)),
    ]
    for variant in variants:
        digests.add(config_digest(variant))
    assert len(digests) == len(variants) + 1


def test_identity_and_absent_programs_hash_differently():
    # Different configs (None vs a truthy program) must never share a
    # cache line even though their results are bit-identical.
    assert config_digest(ServerConfig(pipeline=None)) != \
        config_digest(ServerConfig(pipeline=identity_program()))
