"""The zero-cost contract: identity programs are bit-invisible.

Installing the pipeline hook put a branch on the hottest path in the
model (``MultiQueueNic.receive``), so this file pins three things:

* no program (``pipeline=None``) still reproduces the pre-pipeline
  golden exactly (same constants ``tests/datapath/test_parity.py``
  pins; duplicated here so this suite stands alone);
* an *empty* program builds no engine at all;
* a truthy *identity* program — which builds the engine, parses every
  packet, and runs a real (empty) table — is still bit-identical on
  every RX backend, because it matches nothing, costs zero cycles, and
  falls back to the same hash RSS the backends use.
"""

import hashlib

import pytest

from repro.p4 import PipelineProgram, identity_program
from repro.system import ServerConfig, ServerSystem
from repro.units import MS

#: The pre-pipeline NAPI golden (captured on the pre-datapath-seam tree;
#: same values as tests/datapath/test_parity.py, duplicated so this
#: suite is self-contained).
FIG9_GOLDEN = {
    "sent": 56531, "completed": 56531, "dropped": 0,
    "package_j_hex": "0x1.1191eb7a24055p+2",
    "latencies_sha256": "78faa8fc4a7b5ecd9bf07878c3b9a6"
                        "495ba151e212356e4fbb8b290e44a09ee9",
    "events_fired": 204202,
}

FIG9_CONFIG = ServerConfig(app="memcached", load_level="high",
                           freq_governor="nmap", n_cores=2, seed=1,
                           trace=True)

BACKENDS = [("napi", "nmap"), ("poll", "performance"),
            ("metronome", "ondemand"), ("nmap-hybrid", "nmap")]

DURATION = 60 * MS


def _fingerprint(result):
    return (result.sent, result.completed, result.dropped,
            result.latencies_ns.tobytes(),
            result.energy.package_j.hex(),
            result.energy.cores_j.hex(),
            tuple(sorted(result.datapath_pkts.items())),
            result.poll_loops, result.sleep_wakes,
            result.perf.events_fired)


def _golden_capture(result):
    return {
        "sent": result.sent, "completed": result.completed,
        "dropped": result.dropped,
        "package_j_hex": result.energy.package_j.hex(),
        "latencies_sha256": hashlib.sha256(
            result.latencies_ns.tobytes()).hexdigest(),
        "events_fired": result.perf.events_fired,
    }


def test_empty_program_builds_no_engine():
    system = ServerSystem(ServerConfig(pipeline=PipelineProgram()))
    assert system.pipeline is None
    assert system.nic.pipeline is None


def test_identity_program_builds_an_engine():
    system = ServerSystem(ServerConfig(pipeline=identity_program()))
    assert system.pipeline is not None
    assert system.nic.pipeline is system.pipeline


@pytest.mark.slow
@pytest.mark.parametrize("program", [None, PipelineProgram(),
                                     identity_program()],
                         ids=["none", "empty", "identity"])
def test_fig9_golden_with_and_without_program(program):
    config = FIG9_CONFIG.with_overrides(pipeline=program)
    result = ServerSystem(config).run(300 * MS)
    assert _golden_capture(result) == FIG9_GOLDEN


@pytest.mark.slow
@pytest.mark.parametrize("datapath,governor", BACKENDS)
def test_identity_program_is_bit_identical_on_every_backend(
        datapath, governor):
    base = ServerConfig(app="memcached", load_level="medium", n_cores=2,
                        freq_governor=governor, seed=7, datapath=datapath)
    bare = ServerSystem(base).run(DURATION)
    programmed = ServerSystem(
        base.with_overrides(pipeline=identity_program())).run(DURATION)
    assert _fingerprint(programmed) == _fingerprint(bare)


@pytest.mark.slow
def test_identity_parity_holds_under_sanitizer(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    config = FIG9_CONFIG.with_overrides(pipeline=identity_program())
    system = ServerSystem(config)
    assert system.sim.sanitizer is not None
    result = system.run(300 * MS)
    assert _golden_capture(result) == FIG9_GOLDEN


@pytest.mark.slow
def test_identity_engine_counts_without_perturbing():
    """The identity engine observes every packet it didn't touch."""
    config = ServerConfig(app="memcached", load_level="medium", n_cores=2,
                          seed=7, pipeline=identity_program())
    system = ServerSystem(config)
    result = system.run(DURATION)
    engine = system.pipeline
    assert engine.parsed == engine.forwarded > 0
    assert engine.dropped == engine.steered == 0
    assert engine.cycles_total == 0.0
    hits, misses, drops = engine.timeline_counts()
    assert (hits, drops) == (0, 0)
    assert misses == engine.parsed
    assert result.telemetry.value(
        "p4_table_misses_total", subsystem="p4",
        table="identity") == engine.parsed
