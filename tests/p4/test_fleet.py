"""Pipelines in fleets: per-node programs via node_overrides.

``pipeline``/``flow_weights`` are plain ServerConfig fields, so a fleet
can mix programmed and unprogrammed nodes exactly as it mixes governors
and datapaths — and sharded execution must stay bit-identical to the
serial fleet at every shard count that divides the node count.
"""

import numpy as np

from repro.cluster import FleetConfig, FleetSystem, ShardedFleetSystem
from repro.p4 import (drop_program, flow_affine_program, identity_program,
                      meter_program)
from repro.system import ServerConfig
from repro.units import MS

DURATION = 20 * MS

SKEW = (8, 4, 2, 2, 1, 1, 1, 1)


def _mixed_config(**overrides):
    node = ServerConfig(app="memcached", load_level="medium",
                        freq_governor="nmap", n_cores=2, n_flows=8,
                        flow_weights=SKEW)
    base = dict(
        node=node, n_nodes=6, policy="round-robin", seed=13,
        node_overrides={
            1: {"pipeline": flow_affine_program(2, SKEW)},
            2: {"pipeline": meter_program(rate_pps=40_000.0,
                                          burst_pkts=32)},
            3: {"pipeline": identity_program()},
            4: {"pipeline": drop_program("session", [0]),
                "datapath": "poll", "freq_governor": "performance"},
            5: {"datapath": "metronome", "freq_governor": "ondemand"},
        })
    base.update(overrides)
    return FleetConfig(**base)


def test_node_overrides_select_programs():
    config = _mixed_config()
    assert config.node_config(0).pipeline is None
    assert config.node_config(1).pipeline.table_names() == \
        ("flow_affinity",)
    assert config.node_config(2).pipeline.table_names() == ("meter",)
    assert config.node_config(4).pipeline.table_names() == ("acl",)
    assert config.node_config(4).datapath == "poll"
    assert config.node_config(5).pipeline is None


def test_mixed_fleet_runs_programmed_and_plain_nodes():
    result = FleetSystem(_mixed_config()).run(DURATION)
    assert result.completed > 0
    plain, affine, metered, ident, acl, metro = result.node_results
    # The ACL node sheds its hot session; everyone else drops nothing.
    assert acl.dropped > 0
    assert plain.dropped == affine.dropped == ident.dropped == 0
    # The meter's bucket rate is below the node's arrival rate.
    assert metered.dropped > 0
    # Identity node is bit-identical to the unprogrammed node modulo
    # dispatch (different arrival slices), so only sanity-check flow.
    assert ident.completed == ident.sent


def test_mixed_fleet_sharding_is_bit_identical():
    serial = FleetSystem(_mixed_config()).run(DURATION)
    for shards in (1, 2, 3, 6):
        sharded = ShardedFleetSystem(
            _mixed_config(shards=shards)).run(DURATION)
        assert sharded.completed == serial.completed
        assert np.array_equal(sharded.latencies_ns, serial.latencies_ns)
        assert sharded.energy.package_j == serial.energy.package_j
        for x, y in zip(sharded.node_results, serial.node_results):
            assert np.array_equal(x.latencies_ns, y.latencies_ns)
            assert x.energy.package_j == y.energy.package_j
            assert x.dropped == y.dropped
            assert x.datapath_pkts == y.datapath_pkts
