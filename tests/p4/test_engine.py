"""Engine behavior: steer, drop, mirror, meter, costs, determinism."""

import numpy as np
import pytest

from repro.obs.timeline import TimelineConfig
from repro.p4 import (PipelineProgram, TableEntry, TableStage, chained,
                      drop_program, flow_affine_program, hash_rss_program,
                      identity_program, meter_program)
from repro.system import ServerConfig, ServerSystem
from repro.units import MS
from repro.workload.client import wrr_pattern

DURATION = 60 * MS

SKEW = (20, 10, 5, 5, 2, 2, 1, 1)


def _config(**overrides):
    base = dict(app="memcached", load_level="high", n_cores=2,
                freq_governor="nmap", seed=7, n_flows=8, flow_weights=SKEW)
    base.update(overrides)
    return ServerConfig(**base)


def _fingerprint(result):
    return (result.sent, result.completed, result.dropped,
            result.latencies_ns.tobytes(),
            result.energy.package_j.hex(),
            result.perf.events_fired)


# -- client skew -------------------------------------------------------- #

def test_wrr_pattern_is_smooth_and_exact():
    pattern = wrr_pattern((3, 1))
    assert pattern == (0, 0, 1, 0)  # interleaved, not a a a b
    assert len(wrr_pattern(SKEW)) == sum(SKEW)
    for fid, weight in enumerate(SKEW):
        assert wrr_pattern(SKEW).count(fid) == weight
    with pytest.raises(ValueError):
        wrr_pattern(())
    with pytest.raises(ValueError):
        wrr_pattern((0, 0))
    with pytest.raises(ValueError):
        wrr_pattern((1.5, 1))


def test_flow_weights_require_matching_n_flows():
    with pytest.raises(ValueError, match="n_flows"):
        ServerSystem(ServerConfig(n_flows=4, flow_weights=(1, 2)))
    with pytest.raises(ValueError, match="n_flows"):
        ServerSystem(ServerConfig(n_flows=None, flow_weights=(1, 2)))


# -- steering ----------------------------------------------------------- #

def test_steer_overrides_rss_placement():
    system = ServerSystem(_config(
        pipeline=flow_affine_program(2, SKEW)))
    result = system.run(DURATION)
    engine = system.pipeline
    assert engine.steered == engine.parsed == result.sent
    stats = engine.table_stats()["flow_affinity"]
    assert stats["hits"] == result.sent and stats["misses"] == 0


def test_steer_queue_validated_against_nic():
    prog = flow_affine_program(4, SKEW)  # queues 0..3, NIC has 2
    with pytest.raises(ValueError, match="queue"):
        ServerSystem(_config(pipeline=prog))


def test_affine_steering_beats_hash_rss_under_skew():
    affine = ServerSystem(_config(
        pipeline=flow_affine_program(2, SKEW))).run(DURATION)
    hashed = ServerSystem(_config(
        pipeline=hash_rss_program(2, 8))).run(DURATION)
    assert affine.p99_ns < hashed.p99_ns


# -- drop / mirror ------------------------------------------------------ #

def test_acl_drop_counts_and_traces():
    system = ServerSystem(_config(pipeline=drop_program("session", [0]),
                                  trace=True))
    result = system.run(DURATION)
    engine = system.pipeline
    assert result.dropped == engine.dropped > 0
    assert result.completed == result.sent - result.dropped
    # Drops land on the fault track of the trace.
    t, v = result.trace.to_arrays("fault.p4.drop")
    assert len(t) == engine.dropped and all(v == 1)


def test_miss_action_drop_inverts_the_acl():
    allow = PipelineProgram(stages=(TableStage(
        name="allowlist",
        entries=tuple(TableEntry(field="session", value=fid,
                                 action="mirror") for fid in (0, 1)),
        miss_action="drop"),))
    system = ServerSystem(_config(pipeline=allow, trace=True))
    result = system.run(DURATION)
    engine = system.pipeline
    stats = engine.table_stats()["allowlist"]
    assert engine.dropped == stats["misses"] > 0
    assert stats["mirrors"] == stats["hits"] == engine.mirrored > 0
    t, _ = result.trace.to_arrays("fault.p4.mirror")
    assert len(t) == engine.mirrored


# -- meter -------------------------------------------------------------- #

def test_meter_drop_sheds_and_mark_forwards():
    dropping = ServerSystem(_config(pipeline=meter_program(
        rate_pps=20_000.0, burst_pkts=32)))
    shed = dropping.run(DURATION)
    assert shed.dropped > 0
    assert dropping.pipeline.table_stats()["meter"]["meter_exceeded"] == \
        shed.dropped

    marking = ServerSystem(_config(pipeline=meter_program(
        rate_pps=20_000.0, burst_pkts=32, exceed_action="mark")))
    marked = marking.run(DURATION)
    assert marked.dropped == 0
    assert marking.pipeline.marked == \
        marking.pipeline.table_stats()["meter"]["meter_exceeded"] > 0
    assert marked.completed == marked.sent


def test_meter_conforms_to_rate_plus_burst():
    rate = 50_000.0
    system = ServerSystem(_config(pipeline=meter_program(
        rate_pps=rate, burst_pkts=16)))
    system.run(DURATION)
    engine = system.pipeline
    conforming = engine.forwarded
    budget = rate * (DURATION / 1e9) + 16
    assert conforming <= budget * 1.05
    assert conforming >= budget * 0.5  # the bucket does refill


# -- cost models -------------------------------------------------------- #

def test_nic_cost_model_adds_latency_not_core_work():
    free = ServerSystem(_config(pipeline=identity_program())).run(DURATION)
    taxed = ServerSystem(_config(pipeline=hash_rss_program(
        2, 8, cycles_per_packet=2_000.0))).run(DURATION)
    # Same placement as hash RSS, but every packet pays 2µs of NIC
    # pipeline delay at 1 GHz: latency must shift right.
    assert float(np.median(taxed.latencies_ns)) > \
        float(np.median(free.latencies_ns))


def test_core_cost_model_charges_the_retrieval_core():
    system = ServerSystem(_config(pipeline=hash_rss_program(
        2, 8, cycles_per_packet=2_000.0, cost_model="core")))
    result = system.run(DURATION)
    label_counts = {}
    for core in system.processor.cores:
        label_counts[core.core_id] = core.works_completed
    assert system.pipeline.cycles_total > 0
    assert result.completed > 0
    assert sum(label_counts.values()) > 0


# -- determinism -------------------------------------------------------- #

@pytest.mark.slow
@pytest.mark.parametrize("datapath,governor",
                         [("napi", "nmap"), ("poll", "performance"),
                          ("metronome", "ondemand")])
def test_programmed_runs_are_seed_deterministic(datapath, governor):
    program = chained(
        flow_affine_program(2, SKEW, cycles_per_packet=10.0),
        meter_program(rate_pps=150_000.0, burst_pkts=64))
    config = _config(pipeline=program, datapath=datapath,
                     freq_governor=governor)
    a = ServerSystem(config).run(DURATION)
    b = ServerSystem(config).run(DURATION)
    assert _fingerprint(a) == _fingerprint(b)
    other = ServerSystem(config.with_overrides(seed=8)).run(DURATION)
    assert _fingerprint(other) != _fingerprint(a)


@pytest.mark.slow
def test_programmed_run_matches_under_sanitizer(monkeypatch):
    config = _config(pipeline=flow_affine_program(2, SKEW))
    plain = ServerSystem(config).run(DURATION)
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    system = ServerSystem(config)
    assert system.sim.sanitizer is not None
    sanitized = system.run(DURATION)
    assert _fingerprint(sanitized) == _fingerprint(plain)


# -- timeline ----------------------------------------------------------- #

def test_timeline_reports_p4_columns():
    config = _config(pipeline=drop_program("session", [0]),
                     timeline=TimelineConfig(interval_ns=10 * MS))
    result = ServerSystem(config).run(DURATION)
    node = result.timeline.node(0)
    assert node.series("p4_hits").sum() > 0
    assert node.series("p4_drops").sum() > 0
    # Windowed deltas must re-add to the cumulative totals.
    plain = ServerSystem(_config(
        pipeline=drop_program("session", [0]))).run(DURATION)
    assert node.series("p4_drops").sum() == plain.dropped


def test_timeline_p4_columns_zero_without_program():
    config = _config(timeline=TimelineConfig(interval_ns=10 * MS))
    result = ServerSystem(config).run(DURATION)
    node = result.timeline.node(0)
    assert node.series("p4_hits").sum() == 0
    assert node.series("p4_misses").sum() == 0
    assert node.series("p4_drops").sum() == 0
