"""batch_events fast paths vs legacy per-packet event scheduling.

The batched client doorbell, chained ACK trains, and synchronous
future-stamped response delivery are pure event-count optimizations:
packet arrival and response delivery *times* are unchanged, so a run
with ``batch_events=False`` (one heap entry per packet, the seed's
behaviour) must produce bit-identical results.
"""

import numpy as np
import pytest

from repro.system import ServerConfig, ServerSystem
from repro.units import MS


def _run(app: str, batch: bool):
    config = ServerConfig(app=app, load_level="low", n_cores=1,
                          freq_governor="performance", seed=33,
                          batch_events=batch)
    return ServerSystem(config).run(15 * MS)


@pytest.mark.parametrize("app", ["memcached", "nginx"])
def test_batched_and_legacy_event_paths_bit_identical(app):
    batched = _run(app, True)
    legacy = _run(app, False)
    assert batched.sent == legacy.sent
    assert batched.completed == legacy.completed
    assert batched.dropped == legacy.dropped
    assert np.array_equal(batched.latencies_ns, legacy.latencies_ns)
    assert np.array_equal(batched.completion_times_ns,
                          legacy.completion_times_ns)
    assert batched.energy.package_j == legacy.energy.package_j
    assert batched.pkts_interrupt_mode == legacy.pkts_interrupt_mode
    assert batched.pkts_polling_mode == legacy.pkts_polling_mode
    assert batched.ksoftirqd_wakeups == legacy.ksoftirqd_wakeups


def test_batching_shrinks_the_heap():
    """The point of the fast path: far fewer events for the same run.

    nginx's multi-segment responses are the stress case — per-packet
    scheduling floods the heap with ACK and wire-delay events."""
    batched = _run("nginx", True)
    legacy = _run("nginx", False)
    assert batched.perf is not None and legacy.perf is not None
    assert batched.perf.events_scheduled < legacy.perf.events_scheduled
    assert batched.perf.heap_peak <= legacy.perf.heap_peak
