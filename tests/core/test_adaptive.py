"""Adaptive (on-line re-profiling) NMAP."""

import pytest

from repro.core.adaptive import AdaptiveNmapGovernor
from repro.core.nmap import NmapThresholds
from repro.system import ServerConfig, ServerSystem
from repro.units import MS


def build(reprofile_period_ns=50 * MS, thresholds=None, seed=3):
    config = ServerConfig(app="memcached", load_level="high",
                          freq_governor="nmap-adaptive", n_cores=1,
                          seed=seed,
                          nmap_thresholds=thresholds,
                          freq_governor_params={
                              "reprofile_period_ns": reprofile_period_ns,
                              "min_interrupts": 50})
    return ServerSystem(config)


def test_reprofiles_during_run():
    system = build()
    result = system.run(200 * MS)
    gov = system.freq_governors[0]
    assert gov.reprofiles >= 1
    assert result.slo_result().satisfied


def test_refreshed_thresholds_replace_initials():
    # Start from absurd thresholds; adaptation must repair them.
    bad = NmapThresholds(ni_th=1e9, cu_th=1e9)
    system = build(thresholds=bad)
    system.run(200 * MS)
    gov = system.freq_governors[0]
    assert gov.thresholds.ni_th < 1e9
    assert gov.monitor.ni_threshold == gov.thresholds.ni_th
    assert gov.engine.cu_threshold == gov.thresholds.cu_th


def test_stop_detaches_profiler():
    system = build()
    system.run(100 * MS)
    gov = system.freq_governors[0]
    assert gov._profiler is None
    assert gov._reprofile_timer is None


def test_validation():
    with pytest.raises(ValueError):
        build(reprofile_period_ns=0)
