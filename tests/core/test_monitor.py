"""Mode Transition Monitor (Algorithm 1)."""

import pytest

from repro.core.monitor import ModeTransitionMonitor
from repro.netstack.napi import MODE_INTERRUPT, MODE_POLLING


class FakeNapi:
    def __init__(self):
        self.poll_listeners = []
        self.irq_listeners = []

    def irq(self):
        for listener in self.irq_listeners:
            listener(self)

    def poll(self, n, mode):
        for listener in self.poll_listeners:
            listener(self, n, mode)


@pytest.fixture
def napi():
    return FakeNapi()


def make_monitor(napi, ni_th=10):
    events = {"notify": 0, "reports": []}
    monitor = ModeTransitionMonitor(
        napi, ni_threshold=ni_th,
        notify=lambda: events.__setitem__("notify", events["notify"] + 1),
        report=lambda p, i: events["reports"].append((p, i)))
    return monitor, events


def test_counters_accumulate_by_mode(napi):
    monitor, _ = make_monitor(napi)
    napi.poll(5, MODE_INTERRUPT)
    napi.poll(3, MODE_POLLING)
    napi.poll(2, MODE_POLLING)
    assert monitor.intr_cnt == 5
    assert monitor.poll_cnt == 5


def test_notify_when_polling_exceeds_threshold(napi):
    monitor, events = make_monitor(napi, ni_th=10)
    napi.irq()
    napi.poll(8, MODE_POLLING)
    assert events["notify"] == 0
    napi.poll(8, MODE_POLLING)   # 16 > 10
    assert events["notify"] == 1


def test_exactly_threshold_does_not_notify(napi):
    monitor, events = make_monitor(napi, ni_th=10)
    napi.irq()
    napi.poll(10, MODE_POLLING)
    assert events["notify"] == 0


def test_notify_fires_once_per_interrupt_interval(napi):
    monitor, events = make_monitor(napi, ni_th=5)
    napi.irq()
    napi.poll(10, MODE_POLLING)
    napi.poll(10, MODE_POLLING)
    assert events["notify"] == 1
    napi.irq()                    # re-arms
    napi.poll(10, MODE_POLLING)
    assert events["notify"] == 2


def test_interrupt_resets_per_irq_counter(napi):
    monitor, events = make_monitor(napi, ni_th=10)
    napi.irq()
    napi.poll(8, MODE_POLLING)
    napi.irq()
    napi.poll(8, MODE_POLLING)
    assert events["notify"] == 0


def test_interrupt_mode_packets_never_notify(napi):
    monitor, events = make_monitor(napi, ni_th=5)
    napi.irq()
    napi.poll(100, MODE_INTERRUPT)
    assert events["notify"] == 0


def test_timer_reports_and_resets(napi):
    monitor, events = make_monitor(napi)
    napi.poll(5, MODE_INTERRUPT)
    napi.poll(7, MODE_POLLING)
    monitor.on_timer()
    assert events["reports"] == [(7, 5)]
    monitor.on_timer()
    assert events["reports"] == [(7, 5), (0, 0)]


def test_detach_unsubscribes(napi):
    monitor, events = make_monitor(napi)
    monitor.detach()
    napi.irq()
    napi.poll(100, MODE_POLLING)
    assert monitor.poll_cnt == 0
    assert events["notify"] == 0


def test_invalid_threshold(napi):
    with pytest.raises(ValueError):
        make_monitor(napi, ni_th=0)
