"""NMAP and NMAP-simpl governors on a live (small) system."""

import pytest

from repro.core.decision import MODE_CPU_UTIL, MODE_NET_INTENSIVE
from repro.core.nmap import NmapThresholds
from repro.system import ServerConfig, ServerSystem
from repro.units import MS


def test_thresholds_validation():
    with pytest.raises(ValueError):
        NmapThresholds(ni_th=0, cu_th=1)
    with pytest.raises(ValueError):
        NmapThresholds(ni_th=1, cu_th=0)


@pytest.fixture(scope="module")
def nmap_high_run():
    config = ServerConfig(app="memcached", load_level="high",
                          freq_governor="nmap", n_cores=1, seed=3)
    system = ServerSystem(config)
    result = system.run(200 * MS)
    return system, result


def test_nmap_enters_and_leaves_ni_mode(nmap_high_run):
    system, _ = nmap_high_run
    gov = system.freq_governors[0]
    assert gov.engine.ni_entries > 0
    assert gov.engine.cu_entries > 0


def test_nmap_meets_slo_at_high_load(nmap_high_run):
    _, result = nmap_high_run
    assert result.slo_result().satisfied


def test_nmap_monitor_saw_both_modes(nmap_high_run):
    system, result = nmap_high_run
    assert result.pkts_interrupt_mode > 0
    assert result.pkts_polling_mode > 0


def test_nmap_stop_detaches(nmap_high_run):
    system, _ = nmap_high_run
    gov = system.freq_governors[0]
    napi = system.stack.napis[0]
    # run() already stopped the governors; listeners must be gone.
    assert gov.monitor._on_poll not in napi.poll_listeners


def test_nmap_simpl_reacts_to_ksoftirqd():
    config = ServerConfig(app="memcached", load_level="high",
                          freq_governor="nmap-simpl", n_cores=1, seed=3)
    system = ServerSystem(config)
    result = system.run(200 * MS)
    gov = system.freq_governors[0]
    assert result.ksoftirqd_wakeups > 0
    assert gov.ni_entries > 0
    assert gov.cu_entries > 0
    assert gov.mode in (MODE_CPU_UTIL, MODE_NET_INTENSIVE)


def test_nmap_simpl_boost_matches_wake_count():
    config = ServerConfig(app="memcached", load_level="medium",
                          freq_governor="nmap-simpl", n_cores=1, seed=3)
    system = ServerSystem(config)
    result = system.run(200 * MS)
    gov = system.freq_governors[0]
    # Every NI entry was triggered by a ksoftirqd wake.
    assert gov.ni_entries <= result.ksoftirqd_wakeups


def test_nmap_uses_explicit_thresholds():
    thresholds = NmapThresholds(ni_th=999_999, cu_th=0.5)
    config = ServerConfig(app="memcached", load_level="high",
                          freq_governor="nmap", n_cores=1, seed=3,
                          nmap_thresholds=thresholds)
    system = ServerSystem(config)
    system.run(100 * MS)
    gov = system.freq_governors[0]
    # An absurdly high NI_TH never triggers Network Intensive Mode.
    assert gov.engine.ni_entries == 0
