"""Mode-aware sleep-state integration."""

import pytest

from repro.core.decision import MODE_CPU_UTIL, MODE_NET_INTENSIVE
from repro.core.sleep_integration import ModeAwareIdleGovernor
from repro.governors.cpuidle import C6OnlyIdleGovernor


class FakeEngine:
    def __init__(self, mode):
        self.mode = mode


class FakeCore:
    def __init__(self, cstates, core_id=0):
        self.cstates = cstates
        self.core_id = core_id


@pytest.fixture
def fake_core(core):
    return FakeCore(core.cstates)


def test_caps_depth_in_network_intensive_mode(fake_core):
    gov = ModeAwareIdleGovernor(fallback=C6OnlyIdleGovernor())
    gov.register_engine(0, FakeEngine(MODE_NET_INTENSIVE))
    assert gov.select(fake_core).name == "CC1"
    assert gov.capped_selections == 1


def test_full_depth_in_cpu_util_mode(fake_core):
    gov = ModeAwareIdleGovernor(fallback=C6OnlyIdleGovernor())
    gov.register_engine(0, FakeEngine(MODE_CPU_UTIL))
    assert gov.select(fake_core).name == "CC6"


def test_unregistered_core_uses_fallback(fake_core):
    gov = ModeAwareIdleGovernor(fallback=C6OnlyIdleGovernor())
    assert gov.select(fake_core).name == "CC6"


def test_shallow_fallback_choice_is_not_deepened(fake_core):
    class CC0Governor(C6OnlyIdleGovernor):
        def select(self, core, idle_elapsed_ns=0):
            return core.cstates.cc0

    gov = ModeAwareIdleGovernor(fallback=CC0Governor())
    gov.register_engine(0, FakeEngine(MODE_NET_INTENSIVE))
    assert gov.select(fake_core).name == "CC0"


def test_on_idle_end_forwards_to_fallback(fake_core):
    calls = []

    class Recorder(C6OnlyIdleGovernor):
        def on_idle_end(self, core, idle_duration_ns):
            calls.append(idle_duration_ns)

    gov = ModeAwareIdleGovernor(fallback=Recorder())
    gov.on_idle_end(fake_core, 123)
    assert calls == [123]
