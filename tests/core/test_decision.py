"""Decision Engine (Algorithm 2)."""

import pytest

from repro.core.decision import (DecisionEngine, MODE_CPU_UTIL,
                                 MODE_NET_INTENSIVE)


class FakeGovernor:
    def __init__(self):
        self.suspended = False
        self.resume_calls = []

    def suspend(self):
        self.suspended = True

    def resume(self, enforce=True):
        self.suspended = False
        self.resume_calls.append(enforce)


class FakeProcessor:
    def __init__(self):
        self.requests = []

    def request_pstate(self, core_id, index):
        self.requests.append((core_id, index))


@pytest.fixture
def engine():
    return DecisionEngine(FakeProcessor(), core_id=0,
                          fallback_governor=FakeGovernor(), cu_threshold=2.0)


def test_starts_in_cpu_util_mode(engine):
    assert engine.mode == MODE_CPU_UTIL


def test_notification_enters_ni_mode(engine):
    engine.on_notification()
    assert engine.mode == MODE_NET_INTENSIVE
    assert engine.fallback.suspended
    assert engine.processor.requests == [(0, 0)]
    assert engine.ni_entries == 1


def test_repeated_notifications_idempotent(engine):
    engine.on_notification()
    engine.on_notification()
    assert engine.ni_entries == 1
    assert engine.processor.requests == [(0, 0)]


def test_low_ratio_falls_back(engine):
    engine.on_notification()
    engine.on_report(poll_cnt=5, intr_cnt=10)  # ratio 0.5 < 2.0
    assert engine.mode == MODE_CPU_UTIL
    assert not engine.fallback.suspended
    assert engine.fallback.resume_calls == [True]
    assert engine.cu_entries == 1


def test_high_ratio_stays_ni(engine):
    engine.on_notification()
    engine.on_report(poll_cnt=50, intr_cnt=10)  # ratio 5 >= 2.0
    assert engine.mode == MODE_NET_INTENSIVE


def test_report_in_cpu_mode_is_ignored(engine):
    engine.on_report(poll_cnt=0, intr_cnt=0)
    assert engine.mode == MODE_CPU_UTIL
    assert engine.cu_entries == 0


def test_zero_interrupts_with_polling_stays_ni(engine):
    """Saturated polling masks interrupts entirely: stay boosted."""
    engine.on_notification()
    engine.on_report(poll_cnt=100, intr_cnt=0)
    assert engine.mode == MODE_NET_INTENSIVE


def test_dead_quiet_window_falls_back(engine):
    engine.on_notification()
    engine.on_report(poll_cnt=0, intr_cnt=0)
    assert engine.mode == MODE_CPU_UTIL


def test_last_ratio_recorded(engine):
    engine.on_notification()
    engine.on_report(poll_cnt=4, intr_cnt=2)
    assert engine.last_ratio == 2.0


def test_invalid_threshold():
    with pytest.raises(ValueError):
        DecisionEngine(FakeProcessor(), 0, FakeGovernor(), cu_threshold=0)
