"""Threshold profiling (Sec. 4.2's procedure)."""

import pytest

from repro.core.profiling import (OnlineReprofiler, ThresholdProfiler,
                                  profile_thresholds)
from repro.netstack.napi import MODE_INTERRUPT, MODE_POLLING


class FakeNapi:
    def __init__(self):
        self.poll_listeners = []
        self.irq_listeners = []

    def irq(self):
        for listener in self.irq_listeners:
            listener(self)

    def poll(self, n, mode):
        for listener in self.poll_listeners:
            listener(self, n, mode)


def test_per_interrupt_polling_max():
    napi = FakeNapi()
    profiler = ThresholdProfiler(napi, n_interrupts=10)
    napi.irq()
    napi.poll(3, MODE_POLLING)
    napi.irq()                    # closes interval with 3
    napi.poll(9, MODE_POLLING)
    napi.irq()                    # closes interval with 9
    assert profiler.ni_threshold() == 9.0


def test_cu_threshold_is_total_ratio():
    napi = FakeNapi()
    profiler = ThresholdProfiler(napi)
    napi.poll(10, MODE_INTERRUPT)
    napi.poll(25, MODE_POLLING)
    assert profiler.cu_threshold() == 2.5


def test_no_traffic_returns_none():
    napi = FakeNapi()
    profiler = ThresholdProfiler(napi)
    assert profiler.ni_threshold() is None
    assert profiler.cu_threshold() is None


def test_window_caps_interrupt_count():
    napi = FakeNapi()
    profiler = ThresholdProfiler(napi, n_interrupts=2)
    for n in (1, 2, 50):
        napi.irq()
        napi.poll(n, MODE_POLLING)
    napi.irq()
    # Only the first 2 completed intervals count: max(1, 2) == 2... but
    # intervals are [1, 2] after the window closes.
    assert profiler.ni_threshold() == 2.0


def test_detach():
    napi = FakeNapi()
    profiler = ThresholdProfiler(napi)
    profiler.detach()
    napi.poll(10, MODE_POLLING)
    assert profiler.total_poll == 0


def test_online_reprofiler():
    napi = FakeNapi()
    reprofiler = OnlineReprofiler(napi)
    assert reprofiler.thresholds() is None
    napi.irq()
    napi.poll(5, MODE_POLLING)
    napi.poll(4, MODE_INTERRUPT)
    napi.irq()
    th = reprofiler.thresholds()
    assert th is not None
    assert th.ni_th == 5.0
    assert th.cu_th == pytest.approx(5 / 4)


@pytest.mark.slow
def test_profile_thresholds_end_to_end():
    th = profile_thresholds("memcached", "high", n_cores=1, seed=11,
                            n_periods=1)
    assert th.ni_th >= 1.0
    assert th.cu_th > 0


def test_invalid_window():
    with pytest.raises(ValueError):
        ThresholdProfiler(FakeNapi(), n_interrupts=0)
