"""Cross-module integration: the paper's headline behaviours, in miniature.

These run the real system end-to-end at reduced scale (1-2 cores, short
windows) and assert the *orderings* the paper reports, not exact numbers.
"""

import pytest

from repro.system import ServerConfig, ServerSystem
from repro.units import MS


def run(governor, app="memcached", level="high", n_cores=1, seed=2,
        duration=200 * MS, **kwargs):
    config = ServerConfig(app=app, load_level=level, freq_governor=governor,
                          n_cores=n_cores, seed=seed, **kwargs)
    return ServerSystem(config).run(duration)


@pytest.fixture(scope="module")
def results():
    governors = ("performance", "ondemand", "powersave", "nmap",
                 "nmap-simpl", "ncap")
    return {gov: run(gov) for gov in governors}


def test_no_requests_lost(results):
    for gov, result in results.items():
        assert result.completed == result.sent, gov
        assert result.dropped == 0, gov


def test_performance_meets_slo(results):
    assert results["performance"].slo_result().satisfied


def test_ondemand_violates_at_high_load(results):
    assert not results["ondemand"].slo_result().satisfied


def test_nmap_meets_slo_at_high_load(results):
    assert results["nmap"].slo_result().satisfied


def test_ncap_meets_slo_at_high_load(results):
    assert results["ncap"].slo_result().satisfied


def test_latency_ordering(results):
    p99 = {g: r.p99_ns for g, r in results.items()}
    assert p99["performance"] <= p99["nmap"] <= p99["ondemand"]
    assert p99["ondemand"] < p99["powersave"]


def test_energy_ordering(results):
    energy = {g: r.energy_j for g, r in results.items()}
    assert energy["powersave"] < energy["performance"]
    assert energy["ondemand"] < energy["performance"]
    assert energy["nmap"] < energy["performance"]


def test_nmap_saves_energy_vs_ncap(results):
    assert results["nmap"].energy_j < results["ncap"].energy_j


def test_polling_dominates_under_powersave(results):
    """An overloaded slow core processes most packets by polling."""
    slow = results["powersave"]
    fast = results["performance"]
    slow_ratio = slow.pkts_polling_mode / max(1, slow.pkts_interrupt_mode)
    fast_ratio = fast.pkts_polling_mode / max(1, fast.pkts_interrupt_mode)
    assert slow_ratio > fast_ratio


def test_ksoftirqd_wakes_under_overload(results):
    assert results["powersave"].ksoftirqd_wakeups > 0


@pytest.mark.slow
def test_low_load_all_governors_meet_slo():
    for gov in ("performance", "ondemand", "nmap", "nmap-simpl"):
        result = run(gov, level="low")
        assert result.slo_result().satisfied, gov


@pytest.mark.slow
def test_nginx_end_to_end():
    perf = run("performance", app="nginx")
    ondemand = run("ondemand", app="nginx")
    assert perf.slo_result().satisfied
    assert ondemand.p99_ns > perf.p99_ns
