"""System builder paths for the manager-style governors."""

import pytest

from repro.baselines.ncap import NcapManager
from repro.baselines.parties import PartiesManager
from repro.system import ServerConfig, ServerSystem
from repro.units import MS


def test_ncap_menu_build_keeps_sleep_during_boost():
    config = ServerConfig(app="memcached", load_level="high",
                          freq_governor="ncap-menu", n_cores=1, seed=9)
    system = ServerSystem(config)
    assert isinstance(system.manager, NcapManager)
    assert not system.manager.disable_sleep_in_boost
    result = system.run(100 * MS)
    assert result.completed == result.sent


def test_ncap_build_disables_sleep_during_boost():
    config = ServerConfig(app="memcached", load_level="high",
                          freq_governor="ncap", n_cores=1, seed=9)
    system = ServerSystem(config)
    assert system.manager.disable_sleep_in_boost


def test_ncap_threshold_override():
    config = ServerConfig(app="memcached", freq_governor="ncap",
                          ncap_threshold_rps=123_456.0, n_cores=1)
    system = ServerSystem(config)
    assert system.manager.threshold_rps == 123_456.0


def test_ncap_default_threshold_scales_with_cores():
    one = ServerSystem(ServerConfig(freq_governor="ncap", n_cores=1))
    two = ServerSystem(ServerConfig(freq_governor="ncap", n_cores=2))
    assert two.manager.threshold_rps == 2 * one.manager.threshold_rps


def test_parties_build_uses_app_slo():
    config = ServerConfig(app="nginx", freq_governor="parties", n_cores=1)
    system = ServerSystem(config)
    assert isinstance(system.manager, PartiesManager)
    assert system.manager.slo_ns == 10 * MS
    assert system.manager.client is system.client


def test_parties_run_adjusts_index():
    config = ServerConfig(app="memcached", load_level="high",
                          freq_governor="parties", n_cores=1, seed=9)
    system = ServerSystem(config)
    result = system.run(600 * MS + 10 * MS)  # past one 500ms period
    assert system.manager.adjustments >= 1
    assert result.completed > 0


def test_nmap_with_explicit_fallback_params():
    config = ServerConfig(app="memcached", load_level="low",
                          freq_governor="nmap", n_cores=1, seed=9,
                          freq_governor_params={"timer_period_ns": 5 * MS})
    system = ServerSystem(config)
    assert system.freq_governors[0].timer_period_ns == 5 * MS
    system.run(50 * MS)
