"""Shard-count invariance: N worker processes, same bits.

The sharded driver (``repro.cluster.sharded``) must be a pure execution
detail: for any shard count, a fleet run produces byte-for-byte the
serial result — latencies, per-node completion times, float energy sums,
telemetry — with faults, client retries, health checking, and fleet
power budgeting all armed at once. This is the hard line that makes
``shards`` safe to flip on any experiment.
"""

import dataclasses

import numpy as np
import pytest

from repro.cluster import (FleetConfig, FleetSystem, ShardedFleetSystem,
                           run_fleet)
from repro.cluster.health import HealthPolicy
from repro.cluster.sharded import shard_bounds
from repro.faults.scenarios import make_plan
from repro.system import ServerConfig
from repro.units import MS
from repro.workload.retry import RetryPolicy

DURATION = 20 * MS


def _everything_config(policy="power-aware"):
    """6 nodes, mixed governors, retries, a blackout fault, health
    checking, and a fleet power budget — every subsystem at once."""
    node = ServerConfig(app="memcached", load_level="medium",
                        freq_governor="nmap", n_cores=2,
                        retry=RetryPolicy())
    return FleetConfig(
        node=node, n_nodes=6, policy=policy, seed=21,
        health=HealthPolicy(),
        fleet_budget_w=80.0, budget_period_ns=5 * MS,
        node_fault_plans={2: make_plan("node-kill", DURATION)},
        node_overrides={0: {"freq_governor": "performance"},
                        4: {"freq_governor": "ondemand"}})


def _assert_identical(a, b):
    assert a.config == b.config or True  # configs differ only in shards
    assert a.sent == b.sent
    assert a.completed == b.completed
    assert a.dropped == b.dropped
    assert a.dispatched == b.dispatched
    assert np.array_equal(a.latencies_ns, b.latencies_ns)
    assert a.energy.package_j == b.energy.package_j
    assert a.energy.cores_j == b.energy.cores_j
    assert a.lockstep_windows == b.lockstep_windows
    assert a.rebalances == b.rebalances
    for x, y in zip(a.node_results, b.node_results):
        assert np.array_equal(x.latencies_ns, y.latencies_ns)
        assert np.array_equal(x.completion_times_ns, y.completion_times_ns)
        assert x.energy.package_j == y.energy.package_j
    for name in ("lb_marked_down_total", "lb_failovers_total",
                 "lb_redispatched_total", "budget_rebalances_total"):
        assert _total(a, name) == _total(b, name), name


def _total(result, name):
    try:
        return result.telemetry.total(name)
    except KeyError:  # health/budget not configured for this fleet
        return 0


def test_shard_counts_are_bit_identical():
    config = _everything_config()
    serial = FleetSystem(config).run(DURATION)
    assert serial.telemetry.total("lb_marked_down_total") > 0
    for shards in (2, 3, 6):
        sharded = ShardedFleetSystem(
            dataclasses.replace(config, shards=shards)).run(DURATION)
        _assert_identical(serial, sharded)
        assert sharded.perf is not None
        assert sharded.perf.shards == shards


@pytest.mark.parametrize("policy", ["round-robin", "least-outstanding"])
def test_sharded_plain_fleet_matches_serial(policy):
    """No faults/health/budget: both dispatch paths, 2 workers."""
    config = FleetConfig(node=ServerConfig(app="memcached",
                                           load_level="medium",
                                           freq_governor="nmap",
                                           n_cores=2),
                         n_nodes=4, policy=policy, seed=5, shards=2)
    serial = FleetSystem(dataclasses.replace(config, shards=1)).run(DURATION)
    _assert_identical(serial, ShardedFleetSystem(config).run(DURATION))


def test_run_fleet_routes_on_shards():
    config = _everything_config(policy="round-robin")
    serial = run_fleet(config, DURATION)
    sharded = run_fleet(dataclasses.replace(config, shards=3), DURATION)
    _assert_identical(serial, sharded)
    assert serial.perf.shards == 1
    assert sharded.perf.shards == 3


def test_shards_clamp_to_node_count():
    config = FleetConfig(n_nodes=2, shards=8, seed=1)
    assert ShardedFleetSystem(config).n_shards == 2
    result = ShardedFleetSystem(config).run(5 * MS)
    serial = FleetSystem(dataclasses.replace(config, shards=1)).run(5 * MS)
    _assert_identical(serial, result)


def test_shard_bounds_partition_evenly():
    assert shard_bounds(6, 3) == [0, 2, 4, 6]
    assert shard_bounds(7, 3) == [0, 2, 4, 7]
    assert shard_bounds(3, 8) == [0, 1, 2, 3]
    assert shard_bounds(5, 1) == [0, 5]
    for n_nodes, shards in ((64, 4), (9, 2), (10, 3)):
        bounds = shard_bounds(n_nodes, shards)
        sizes = [b - a for a, b in zip(bounds, bounds[1:])]
        assert sum(sizes) == n_nodes
        assert max(sizes) - min(sizes) <= 1


def test_sharded_validates_config():
    with pytest.raises(ValueError, match="shards"):
        FleetSystem(FleetConfig(shards=0))
    with pytest.raises(ValueError, match="max_stride_windows"):
        FleetSystem(FleetConfig(max_stride_windows=0))
