"""Dispatch policies: determinism and choice behaviour (unit level)."""

import random

import pytest

from repro.cluster.lb import (POLICIES, NodeView, PowerAwarePolicy,
                              make_policy)
from repro.cpu.pstate import PStateTable
from repro.units import GHZ


class FakeCore:
    def __init__(self, pstate_index=0):
        self.pstate_index = pstate_index


class FakeProcessor:
    def __init__(self, pstate_indices):
        self.pstates = PStateTable.linear(1.2 * GHZ, 3.2 * GHZ, 16)
        self.cores = [FakeCore(i) for i in pstate_indices]

    @property
    def n_cores(self):
        return len(self.cores)


class FakeClient:
    def __init__(self):
        self.completed = 0
        self.gave_up = 0


class FakeSystem:
    def __init__(self, pstate_indices=(0, 0)):
        self.processor = FakeProcessor(pstate_indices)
        self.client = FakeClient()


def make_views(n, pstates=None):
    views = [NodeView(i, FakeSystem(pstates[i] if pstates else (0, 0)))
             for i in range(n)]
    return views


def bind(policy, views, seed=0):
    policy.bind(views, random.Random(seed))
    return policy


def test_registry_has_all_policies():
    assert set(POLICIES) == {"round-robin", "least-outstanding", "p2c",
                             "power-aware"}
    for name in POLICIES:
        assert make_policy(name).name == name


def test_unknown_policy_rejected():
    with pytest.raises(ValueError, match="unknown dispatch policy"):
        make_policy("random")


def test_round_robin_is_session_affine():
    policy = bind(make_policy("round-robin"), make_views(3))
    # New sessions rotate; repeats stick to their node.
    assert [policy.choose(0, s) for s in (10, 11, 12, 13)] == [0, 1, 2, 0]
    assert policy.choose(99, 11) == 1
    assert policy.choose(99, 13) == 0
    assert policy.feedback_free


def test_least_outstanding_scans_all_nodes():
    views = make_views(3)
    policy = bind(make_policy("least-outstanding"), views)
    views[0].dispatched = 5
    views[1].dispatched = 2
    views[2].dispatched = 9
    assert policy.choose(0, 0) == 1
    # Completions reduce the observed backlog.
    views[2].system.client.completed = 9
    assert policy.choose(0, 0) == 2


def test_least_outstanding_ties_break_low_node_id():
    policy = bind(make_policy("least-outstanding"), make_views(4))
    assert policy.choose(0, 0) == 0


def test_p2c_picks_the_less_loaded_of_its_pair():
    views = make_views(2)
    policy = bind(make_policy("p2c"), views)
    views[0].dispatched = 100
    # With 2 nodes the sampled pair is always {0, 1}.
    for _ in range(10):
        assert policy.choose(0, 0) == 1


def test_p2c_is_deterministic_under_seed():
    choices_a = [bind(make_policy("p2c"), make_views(5), seed=7)
                 .choose(t, 0) for t in range(50)]
    choices_b = [bind(make_policy("p2c"), make_views(5), seed=7)
                 .choose(t, 0) for t in range(50)]
    # Rebinding with the same seed replays the same candidate stream
    # (one draw per choose on fresh policies).
    policy = bind(make_policy("p2c"), make_views(5), seed=7)
    choices_c = [policy.choose(t, 0) for t in range(50)]
    assert choices_a == choices_b
    assert len(set(choices_c)) > 1  # it does spread load


def test_power_aware_prefers_the_faster_node_on_ties():
    # Node 1's cores sit at P0 (fast); node 0's at P15 (slow).
    views = make_views(2, pstates=[(15, 15), (0, 0)])
    policy = bind(make_policy("power-aware"), views)
    assert policy.choose(0, 0) == 1
    # Outstanding load dominates the speed tie-break.
    views[1].dispatched = 3
    assert policy.choose(0, 0) == 0


def test_power_aware_speed_bands_quantize():
    # P8 (~2.13 GHz) vs P15 (1.2 GHz): distinct at 8 bands, equal at 1.
    views = make_views(2, pstates=[(15, 15), (8, 8)])
    fine = bind(PowerAwarePolicy(speed_bands=8), views)
    assert fine.choose(0, 0) == 1
    coarse = bind(PowerAwarePolicy(speed_bands=1), make_views(
        2, pstates=[(15, 15), (8, 8)]))
    assert coarse.choose(0, 0) == 0  # same band, node-id tie-break
    with pytest.raises(ValueError):
        PowerAwarePolicy(speed_bands=0)


def test_node_view_relative_speed():
    view = NodeView(0, FakeSystem((0, 0)))
    assert view.relative_speed() == pytest.approx(1.0)
    slow = NodeView(1, FakeSystem((15, 15)))
    assert slow.relative_speed() == pytest.approx(1.2 / 3.2)
