"""Fleet timelines: execution-mode invariance and the flight recorder.

The fleet timeline contract: sampled series are part of the *model*,
not the execution. Shard counts, adaptive strides, and the in-process
vs multiprocess backends must all produce byte-identical timelines —
and arming the timeline must not change the simulation results it
observes.
"""

import dataclasses

import numpy as np
import pytest

from repro.cluster import FleetConfig, FleetSystem, ShardedFleetSystem
from repro.cluster.health import HealthPolicy
from repro.faults.scenarios import make_plan
from repro.obs.timeline import FLEET_SERIES, TimelineConfig, slo_burn
from repro.system import ServerConfig
from repro.units import MS
from repro.workload.retry import RetryPolicy

DURATION = 20 * MS
INTERVAL = 2 * MS


def _everything_config(timeline=True, **overrides):
    """The shard-invariance fleet with every subsystem armed at once,
    plus windowed sampling (mirrors tests/cluster/test_sharded.py)."""
    node = ServerConfig(app="memcached", load_level="medium",
                        freq_governor="nmap", n_cores=2,
                        retry=RetryPolicy())
    tl = (TimelineConfig(interval_ns=INTERVAL, flight_windows=3,
                         monitors=(slo_burn(),))
          if timeline else None)
    base = dict(
        node=node, n_nodes=6, policy="power-aware", seed=21,
        health=HealthPolicy(),
        fleet_budget_w=80.0, budget_period_ns=5 * MS,
        node_fault_plans={2: make_plan("node-kill", DURATION)},
        node_overrides={0: {"freq_governor": "performance"},
                        4: {"freq_governor": "ondemand"}},
        timeline=tl)
    base.update(overrides)
    return FleetConfig(**base)


def _assert_timelines_identical(a, b):
    assert a is not None and b is not None
    assert a.interval_ns == b.interval_ns
    assert len(a.nodes) == len(b.nodes)
    for x, y in zip(a.nodes, b.nodes):
        assert x == y  # Timeline.__eq__: names, grid, and rows, bitwise
    assert a.fleet == b.fleet
    assert [e.as_dict() for e in a.events] == \
        [e.as_dict() for e in b.events]
    assert a.aborted_at_ns == b.aborted_at_ns


def test_timeline_off_keeps_fleet_bit_identical():
    """timeline=None must reproduce the pre-timeline run exactly."""
    off = FleetSystem(_everything_config(timeline=False)).run(DURATION)
    on = FleetSystem(_everything_config()).run(DURATION)
    assert off.timeline is None and on.timeline is not None
    assert off.completed == on.completed
    assert off.dispatched == on.dispatched
    assert np.array_equal(off.latencies_ns, on.latencies_ns)
    assert off.energy.package_j == on.energy.package_j
    for x, y in zip(off.node_results, on.node_results):
        assert np.array_equal(x.latencies_ns, y.latencies_ns)
        assert x.energy.package_j == y.energy.package_j


def test_sharded_timelines_are_bit_identical():
    """The acceptance bar: every shard count, same timeline bytes."""
    config = _everything_config()
    serial = FleetSystem(config).run(DURATION)
    assert len(serial.timeline) == DURATION // INTERVAL
    for shards in (2, 3, 6):
        sharded = ShardedFleetSystem(
            dataclasses.replace(config, shards=shards)).run(DURATION)
        _assert_timelines_identical(serial.timeline, sharded.timeline)
        # Execution-detail telemetry rides along without breaking parity.
        assert sharded.perf.shards == shards
        assert len(sharded.perf.shard_span_wall_s) == shards
        assert sharded.perf.shard_imbalance >= 1.0


def test_adaptive_stride_timelines_are_bit_identical():
    """Strides are capped at sample barriers: lookahead cannot skip or
    shift a sample. Node (model) series are bitwise identical; of the
    fleet series only ``strides`` — which *counts the driver's
    strides* and is an execution detail like ``perf.wall_s`` — may
    differ."""
    window = _everything_config(max_stride_windows=1)
    strided = _everything_config(max_stride_windows=64)
    a = FleetSystem(window).run(DURATION)
    b = FleetSystem(strided).run(DURATION)
    for x, y in zip(a.timeline.nodes, b.timeline.nodes):
        assert x == y
    assert [e.as_dict() for e in a.timeline.events] == \
        [e.as_dict() for e in b.timeline.events]
    assert a.timeline.fleet.t_ns == b.timeline.fleet.t_ns
    assert np.array_equal(a.timeline.fleet.series("dispatched"),
                          b.timeline.fleet.series("dispatched"))
    assert np.array_equal(a.timeline.fleet.series("windows"),
                          b.timeline.fleet.series("windows"))
    # Coalescing actually ran: fewer strides cover the same windows.
    assert b.timeline.fleet.series("strides").sum() < \
        a.timeline.fleet.series("strides").sum()


def test_fleet_series_tile_fleet_totals():
    result = FleetSystem(_everything_config()).run(DURATION)
    fleet = result.timeline.fleet
    assert fleet is not None
    assert fleet.series_names == FLEET_SERIES
    assert int(fleet.series("dispatched").sum()) == \
        sum(result.dispatched)
    assert int(fleet.series("windows").sum()) == result.lockstep_windows
    for nid, tl in enumerate(result.timeline.nodes):
        node_result = result.node_results[nid]
        assert tl.series("energy_j").sum() == \
            node_result.energy.package_j


def test_node_crash_trips_flight_recorder():
    """The seeded node-kill run must leave a post-mortem whose final
    ring window matches the timeline rows at the crash window."""
    result = FleetSystem(_everything_config()).run(DURATION)
    crashes = [d for d in result.timeline.dumps
               if d.trigger == "node-crash"]
    assert len(crashes) == 1
    dump = crashes[0]
    assert dump.node == 2
    assert "node 2" in dump.reason
    assert "node-crash@node2" in dump.faults_active
    # Ring contents are the timeline's own rows for those windows.
    sample_idx = dump.t_windows[-1] // INTERVAL - 1
    for nid, tl in enumerate(result.timeline.nodes):
        assert dump.node_rows[-1][nid] == tl.rows[sample_idx]
    assert dump.fleet_rows[-1] == result.timeline.fleet.rows[sample_idx]
    # The node-kill window spans 30-60% of the run (6-12 ms). The
    # (6,8] window still sees responses that were in flight at the
    # crash instant; by (8,10] the dead node records zero completions
    # while the fleet keeps dispatching elsewhere.
    dead = result.timeline.nodes[2].series("completed")
    assert dead[(10 * MS) // INTERVAL - 1] == 0.0
    assert result.telemetry.total("flight_dumps_total") >= 1


def test_sharded_crash_dump_matches_serial(tmp_path):
    serial = FleetSystem(_everything_config()).run(DURATION)
    path = tmp_path / "flight.jsonl"
    config = _everything_config(
        timeline=False,
        shards=3).with_overrides(timeline=TimelineConfig(
            interval_ns=INTERVAL, flight_windows=3,
            monitors=(slo_burn(),), flight_path=str(path)))
    sharded = ShardedFleetSystem(config).run(DURATION)
    a = [d for d in serial.timeline.dumps if d.trigger == "node-crash"]
    b = [d for d in sharded.timeline.dumps if d.trigger == "node-crash"]
    assert len(a) == len(b) == 1
    assert a[0].t_windows == b[0].t_windows
    assert a[0].node_rows == b[0].node_rows
    assert path.exists() and path.read_text().strip()


def test_monitor_abort_truncates_fleet_run():
    from repro.obs.timeline import oscillation

    config = _everything_config(timeline=False).with_overrides(
        timeline=TimelineConfig(
            interval_ns=INTERVAL,
            monitors=(oscillation(max_flips=0, consecutive_windows=2,
                                  abort=True),)))
    result = FleetSystem(config).run(DURATION)
    assert result.timeline.aborted_at_ns == 2 * INTERVAL
    assert result.duration_ns == 2 * INTERVAL
    assert len(result.timeline) == 2
    sharded = ShardedFleetSystem(
        dataclasses.replace(config, shards=2)).run(DURATION)
    _assert_timelines_identical(result.timeline, sharded.timeline)
    assert np.array_equal(result.latencies_ns, sharded.latencies_ns)


def test_interval_rounds_up_to_lockstep_windows():
    config = _everything_config(timeline=False).with_overrides(
        timeline=TimelineConfig(interval_ns=7_500))  # 1.5 windows
    result = FleetSystem(config).run(DURATION)
    assert result.timeline.interval_ns == 10_000  # 2 x lb wire latency
    assert all(t % 10_000 == 0 for t in result.timeline.node(0).t_ns)
