"""HealthMonitor unit tests against fake node views."""

import pytest

from repro.cluster.health import HealthMonitor, HealthPolicy
from repro.obs.registry import TelemetryRegistry


class FakeView:
    def __init__(self, node_id):
        self.node_id = node_id
        self._completed = 0
        self._outstanding = 0

    def completed(self):
        return self._completed

    def outstanding(self):
        return self._outstanding


def make_monitor(n=3, **policy_kwargs):
    views = [FakeView(i) for i in range(n)]
    policy = HealthPolicy(**policy_kwargs)
    return HealthMonitor(views, policy), views


def test_policy_validation():
    with pytest.raises(ValueError):
        HealthPolicy(down_after_windows=0)
    with pytest.raises(ValueError):
        HealthPolicy(up_after_windows=0)
    with pytest.raises(ValueError):
        HealthPolicy(min_outstanding=0)
    with pytest.raises(ValueError):
        HealthPolicy(redispatch_budget=-1)
    with pytest.raises(ValueError):
        HealthPolicy(probe_every_windows=0)


def test_stalled_node_is_marked_down_after_threshold():
    monitor, views = make_monitor(down_after_windows=3, min_outstanding=4)
    views[1]._outstanding = 10  # stuck with work, completing nothing
    assert monitor.observe_window() == []
    assert monitor.observe_window() == []
    assert monitor.observe_window() == [1]
    assert monitor.down[1]
    assert monitor.marks_down == 1


def test_idle_node_is_not_a_dead_node():
    monitor, views = make_monitor(down_after_windows=2, min_outstanding=4)
    views[1]._outstanding = 2  # below min_outstanding: just idle
    for _ in range(10):
        assert monitor.observe_window() == []
    assert not monitor.down[1]


def test_completions_reset_the_stall_counter():
    monitor, views = make_monitor(down_after_windows=3, min_outstanding=4)
    views[1]._outstanding = 10
    monitor.observe_window()
    monitor.observe_window()
    views[1]._completed += 1  # a response arrived just in time
    assert monitor.observe_window() == []
    assert not monitor.down[1]


def _mark_down(monitor, views, nid):
    views[nid]._outstanding = 10
    while not monitor.down[nid]:
        monitor.observe_window()


def test_down_node_recovers_after_responsive_windows():
    monitor, views = make_monitor(down_after_windows=2,
                                  up_after_windows=2, min_outstanding=4)
    _mark_down(monitor, views, 1)
    views[1]._completed += 1
    monitor.observe_window()
    assert monitor.down[1]  # one responsive window is not enough
    monitor.observe_window()  # quiet window must NOT reset progress
    views[1]._completed += 1
    monitor.observe_window()
    assert not monitor.down[1]
    assert monitor.marks_up == 1


def test_route_passes_healthy_probes_sparsely_and_fails_over():
    monitor, views = make_monitor(down_after_windows=1, min_outstanding=4,
                                  probe_every_windows=5)
    assert monitor.route(0) == 0  # healthy: untouched
    _mark_down(monitor, views, 1)
    views[0]._outstanding = 3
    views[2]._outstanding = 1
    # Advance to a probe window (multiple of probe_every_windows).
    while monitor._window_index % 5 != 0:
        monitor.observe_window()
    assert monitor.route(1) == 1  # first hit in a probe window probes
    assert monitor.probes == 1
    assert monitor.route(1) == 2  # probe spent: least-outstanding healthy
    assert monitor.failovers == 1
    monitor.observe_window()  # not a probe window
    assert monitor.route(1) == 2
    assert monitor.probes == 1


def test_fallback_prefers_least_outstanding_healthy_node():
    monitor, views = make_monitor()
    _mark_down(monitor, views, 0)
    views[1]._outstanding = 7
    views[2]._outstanding = 2
    assert monitor.fallback(0) == 2


def test_fallback_returns_self_when_no_node_is_healthy():
    monitor, views = make_monitor(n=2, down_after_windows=1)
    _mark_down(monitor, views, 0)
    _mark_down(monitor, views, 1)
    assert monitor.fallback(0) == 0


def test_redispatch_consumes_a_finite_budget():
    monitor, views = make_monitor(redispatch_budget=15)
    views[1]._outstanding = 10
    assert monitor.take_redispatch(1) == 10
    assert monitor.take_redispatch(1) == 5  # budget exhausted at 15
    assert monitor.take_redispatch(1) == 0
    assert monitor.redispatched == 15


def test_register_into_exposes_counters():
    monitor, views = make_monitor(down_after_windows=1, min_outstanding=4)
    _mark_down(monitor, views, 1)
    reg = TelemetryRegistry()
    monitor.register_into(reg)
    assert reg.value("lb_marked_down_total", subsystem="fleet") == 1
    assert reg.value("lb_failovers_total", subsystem="fleet") == 0
