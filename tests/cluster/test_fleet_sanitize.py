"""Sanitized fleet runs: clean parity plus seeded lookahead violations.

The conservative-lockstep invariants (`no node outruns its window`, `a
window only dispatches its own arrivals`) are exactly what the fleet's
correctness argument rests on. A sanitized fleet must (a) pass its own
checks on a healthy run while staying bit-identical, and (b) catch each
invariant when a violation is planted.
"""

import numpy as np
import pytest

from repro.analysis.sanitize import SanitizerError
from repro.cluster import FleetConfig, run_fleet
from repro.cluster.fleet import FleetSystem
from repro.system import ServerConfig
from repro.units import MS

DURATION = 20 * MS


def _fleet_config(**kwargs):
    node = ServerConfig(app="memcached", load_level="low",
                        freq_governor="ondemand", n_cores=2)
    kwargs.setdefault("n_nodes", 2)
    kwargs.setdefault("policy", "round-robin")
    return FleetConfig(node=node, seed=3, **kwargs)


@pytest.mark.parametrize("policy", ["round-robin", "least-outstanding"])
def test_sanitized_fleet_is_bit_identical(monkeypatch, policy):
    """Both dispatch paths (feedback-free and per-window) under checks."""
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    base = run_fleet(_fleet_config(policy=policy), DURATION)
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    checked = run_fleet(_fleet_config(policy=policy), DURATION)

    assert np.array_equal(base.latencies_ns, checked.latencies_ns)
    assert base.energy.package_j == checked.energy.package_j
    assert base.energy.cores_j == checked.energy.cores_j
    assert base.dispatched == checked.dispatched
    assert base.lockstep_windows == checked.lockstep_windows


def test_sanitized_fleet_arms_every_node(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    fleet = FleetSystem(_fleet_config())
    assert fleet._sanitizer is not None
    assert all(node.sim.sanitizer is not None for node in fleet.nodes)
    fleet.run(DURATION)
    for node in fleet.nodes:
        assert node.sim.sanitizer.windows_checked > 0
        assert node.sim.sanitizer.energy_checks == 1


def test_lookahead_violation_caught(monkeypatch):
    """A node advanced past its window start raises at the window check."""
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    fleet = FleetSystem(_fleet_config())
    # Plant the violation: node 1's window loop overshoots by one
    # window, as a buggy lookahead/window computation would.
    overshoot = fleet.config.lb_wire_latency_ns
    sanitized_run_until = fleet.nodes[1].sim.run_until
    fleet.nodes[1].sim.run_until = \
        lambda t_end: sanitized_run_until(t_end + overshoot)
    with pytest.raises(SanitizerError, match="lookahead"):
        fleet.run(DURATION)


def test_dispatch_outside_window_caught(monkeypatch):
    """A balancer reading arrivals it cannot have seen yet raises."""
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    fleet = FleetSystem(_fleet_config(policy="least-outstanding"))
    sanitizer = fleet._sanitizer
    window = fleet.config.lb_wire_latency_ns
    # In-window dispatches are fine; out-of-window ones raise.
    sanitizer.check_dispatch(0, window // 2, 0, window)
    with pytest.raises(SanitizerError, match="could not yet have observed"):
        sanitizer.check_dispatch(0, window + 1, 0, window)


def test_unsanitized_fleet_has_no_sanitizer(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    fleet = FleetSystem(_fleet_config())
    assert fleet._sanitizer is None
    assert all(node.sim.sanitizer is None for node in fleet.nodes)


# -- periodic per-window energy-conservation variant ------------------------ #

def test_energy_window_checks_are_off_by_default(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    monkeypatch.delenv("REPRO_SANITIZE_ENERGY_WINDOWS", raising=False)
    fleet = FleetSystem(_fleet_config())
    fleet.run(DURATION)
    for node in fleet.nodes:
        assert not node.sim.sanitizer.periodic_energy
        assert node.sim.sanitizer.energy_window_checks == 0


@pytest.mark.parametrize("policy", ["round-robin", "least-outstanding"])
def test_energy_window_checks_run_when_armed(monkeypatch, policy):
    """Both dispatch paths check every node each lockstep window —
    read-only, so results stay bit-identical to the unsanitized run."""
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    base = run_fleet(_fleet_config(policy=policy), DURATION)
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    monkeypatch.setenv("REPRO_SANITIZE_ENERGY_WINDOWS", "1")
    fleet = FleetSystem(_fleet_config(policy=policy))
    checked = fleet.run(DURATION)
    for node in fleet.nodes:
        assert (node.sim.sanitizer.energy_window_checks
                == checked.lockstep_windows)
    assert np.array_equal(base.latencies_ns, checked.latencies_ns)
    assert base.energy.package_j == checked.energy.package_j


def test_energy_window_violations_raise(monkeypatch):
    from repro.cpu.power import EnergyMeter, PackageEnergy
    from repro.sim.simulator import Simulator

    monkeypatch.setenv("REPRO_SANITIZE_ENERGY_WINDOWS", "1")
    sanitizer = Simulator(sanitize=True).sanitizer
    package = PackageEnergy.__new__(PackageEnergy)
    package.core_meters = {0: EnergyMeter("core0")}
    package._uncore = EnergyMeter("uncore")
    sanitizer.check_energy_window(package, 1000)

    # Checkpoint past the window end.
    package.core_meters[0]._last_time = 5000
    with pytest.raises(SanitizerError, match="past the window end"):
        sanitizer.check_energy_window(package, 2000)
    package.core_meters[0]._last_time = 0

    # Negative power draw.
    package._uncore._power_w = -1.0
    with pytest.raises(SanitizerError, match="negative"):
        sanitizer.check_energy_window(package, 2000)
    package._uncore._power_w = 0.0

    # Energy going backwards between windows.
    package.core_meters[0]._energy_j = 10.0
    sanitizer.check_energy_window(package, 3000)
    package.core_meters[0]._energy_j = 9.0
    with pytest.raises(SanitizerError, match="energy went backwards"):
        sanitizer.check_energy_window(package, 4000)
