"""Fleet co-simulation: conservation, determinism, telemetry, validation."""

import numpy as np
import pytest

from repro.cluster import FleetConfig, FleetSystem, run_fleet
from repro.system import ServerConfig
from repro.units import MS


def _node(**kwargs):
    kwargs.setdefault("app", "memcached")
    kwargs.setdefault("load_level", "low")
    kwargs.setdefault("freq_governor", "performance")
    kwargs.setdefault("n_cores", 1)
    return ServerConfig(**kwargs)


@pytest.fixture(scope="module", params=["round-robin", "least-outstanding"])
def fleet_result(request):
    config = FleetConfig(node=_node(), n_nodes=3, policy=request.param,
                         seed=9)
    return run_fleet(config, 50 * MS)


def test_every_arrival_is_dispatched_exactly_once(fleet_result):
    assert sum(fleet_result.dispatched) == fleet_result.sent
    assert fleet_result.sent > 0
    assert all(r.sent == d for r, d in zip(fleet_result.node_results,
                                           fleet_result.dispatched))
    assert fleet_result.completed + fleet_result.dropped == fleet_result.sent
    assert len(fleet_result.latencies_ns) == fleet_result.completed


def test_lockstep_window_count(fleet_result):
    window = fleet_result.config.lb_wire_latency_ns
    expected = -(-50 * MS // window)  # ceil division
    assert fleet_result.lockstep_windows == expected


def test_fleet_latencies_concatenate_node_major(fleet_result):
    parts = [r.latencies_ns for r in fleet_result.node_results]
    assert np.array_equal(fleet_result.latencies_ns, np.concatenate(parts))
    assert fleet_result.energy.package_j == pytest.approx(
        sum(r.energy.package_j for r in fleet_result.node_results))


def test_rerun_is_bit_identical(fleet_result):
    again = run_fleet(fleet_result.config, 50 * MS)
    assert again.sent == fleet_result.sent
    assert again.dispatched == fleet_result.dispatched
    assert np.array_equal(again.latencies_ns, fleet_result.latencies_ns)
    assert again.energy.package_j == fleet_result.energy.package_j


def test_telemetry_carries_node_labels_and_fleet_instruments(fleet_result):
    reg = fleet_result.telemetry
    for i, count in enumerate(fleet_result.dispatched):
        assert reg.value("lb_dispatched_total", subsystem="fleet",
                         node=str(i)) == count
    assert reg.value("lockstep_windows_total",
                     subsystem="fleet") == fleet_result.lockstep_windows
    assert reg.value("budget_rebalances_total", subsystem="fleet") == 0
    # Per-node registries merge under a node label: the summed workload
    # counter matches the fleet's completed count.
    total = sum(
        reg.value("requests_completed_total", subsystem="workload",
                  node=str(i))
        for i in range(fleet_result.config.n_nodes))
    assert total == fleet_result.completed


def test_nodes_draw_distinct_service_randomness():
    config = FleetConfig(node=_node(), n_nodes=2, seed=9)
    result = run_fleet(config, 50 * MS)
    a, b = result.node_results
    assert not np.array_equal(a.latencies_ns[:200], b.latencies_ns[:200])


def test_single_session_pins_round_robin_to_one_node():
    config = FleetConfig(node=_node(), n_nodes=3, policy="round-robin",
                         n_sessions=1, seed=9)
    result = run_fleet(config, 20 * MS)
    assert result.dispatched[0] == result.sent
    assert result.dispatched[1:] == [0, 0]


def test_validation_errors():
    with pytest.raises(ValueError, match="at least one node"):
        FleetSystem(FleetConfig(node=_node(), n_nodes=0))
    with pytest.raises(ValueError, match="unknown dispatch policy"):
        FleetSystem(FleetConfig(node=_node(), policy="coin-flip"))
    with pytest.raises(ValueError, match="lb_wire_latency_ns"):
        FleetSystem(FleetConfig(node=_node(),
                                lb_wire_latency_ns=_node().wire_latency_ns
                                * 2))
    with pytest.raises(ValueError, match="lb_wire_latency_ns"):
        FleetSystem(FleetConfig(node=_node(), lb_wire_latency_ns=0))
    with pytest.raises(ValueError, match="at least one session"):
        FleetSystem(FleetConfig(node=_node(), n_sessions=0))
    with pytest.raises(ValueError, match="session_skew"):
        FleetSystem(FleetConfig(node=_node(), session_skew=-0.1))
    with pytest.raises(ValueError, match="node_id"):
        FleetConfig(node=_node(), n_nodes=2).node_config(2)
    with pytest.raises(ValueError, match="duration"):
        FleetSystem(FleetConfig(node=_node())).run(0)
