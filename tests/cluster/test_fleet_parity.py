"""The fleet determinism contract (tier-1 critical).

Two guarantees, both bit-level:

* A 1-node fleet under the feedback-free round-robin policy reproduces
  the equivalent standalone :class:`~repro.system.ServerSystem` run
  exactly — same latencies, same completion times, same float energy,
  same packet-mode counters. The lockstep loop's incremental
  ``run_until`` calls and the pre-fed arrival schedule must not perturb
  event ordering.
* Fanning fleet jobs over worker processes changes wall-clock only.
"""

import numpy as np

from repro.cluster import FleetConfig, run_fleet
from repro.cluster.cache import clear_fleet_memo, run_many_fleet
from repro.experiments import runner
from repro.system import ServerConfig, ServerSystem
from repro.units import MS

DURATION = 40 * MS


def _fleet_config(**kwargs):
    node = ServerConfig(app="memcached", load_level="low",
                        freq_governor="ondemand", n_cores=2)
    kwargs.setdefault("policy", "round-robin")
    return FleetConfig(node=node, n_nodes=1, seed=3, **kwargs)


def test_one_node_fleet_matches_standalone_bit_for_bit():
    fleet_cfg = _fleet_config()
    fleet = run_fleet(fleet_cfg, DURATION)

    standalone_cfg = fleet_cfg.node.with_overrides(
        seed=fleet_cfg.node_seed(0),
        arrival_seed=fleet_cfg.arrival_seed())
    standalone = ServerSystem(standalone_cfg).run(DURATION)

    assert fleet.sent == standalone.sent
    assert fleet.completed == standalone.completed
    assert fleet.dropped == standalone.dropped
    assert np.array_equal(fleet.latencies_ns, standalone.latencies_ns)
    node = fleet.node_results[0]
    assert np.array_equal(node.completion_times_ns,
                          standalone.completion_times_ns)
    # Exact float equality: the incremental lockstep advance must hit
    # the same energy-accrual points in the same order.
    assert fleet.energy.package_j == standalone.energy.package_j
    assert node.pkts_interrupt_mode == standalone.pkts_interrupt_mode
    assert node.pkts_polling_mode == standalone.pkts_polling_mode
    assert node.ksoftirqd_wakeups == standalone.ksoftirqd_wakeups


def test_one_node_parity_holds_for_feedback_policies():
    """Feedback dispatch feeds arrivals window by window; with one node
    every request still lands there, so totals and latencies must match
    the pre-fed path (event *interleaving* differs, so energy may drift
    in float accumulation order — totals are the contract here)."""
    fleet = run_fleet(_fleet_config(policy="least-outstanding"), DURATION)
    baseline = run_fleet(_fleet_config(), DURATION)
    assert fleet.sent == baseline.sent
    assert fleet.completed == baseline.completed
    assert np.array_equal(np.sort(fleet.latencies_ns),
                          np.sort(baseline.latencies_ns))


def _jobs():
    base = FleetConfig(
        node=ServerConfig(app="memcached", load_level="low",
                          freq_governor="performance", n_cores=1),
        n_nodes=2, policy="least-outstanding")
    return [(base.with_overrides(seed=seed, policy=policy), 15 * MS)
            for seed in (21, 22)
            for policy in ("round-robin", "least-outstanding")]


def test_serial_and_parallel_fleets_bit_identical(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    jobs = _jobs()
    runner.clear_cache()
    clear_fleet_memo()
    serial = run_many_fleet(jobs, workers=1)
    runner.clear_cache()
    clear_fleet_memo()
    parallel = run_many_fleet(jobs, workers=2)
    runner.clear_cache()
    clear_fleet_memo()
    for a, b, (config, _) in zip(serial, parallel, jobs):
        assert a.config == config and b.config == config
        assert a.sent == b.sent
        assert a.dispatched == b.dispatched
        assert np.array_equal(a.latencies_ns, b.latencies_ns)
        assert a.energy.package_j == b.energy.package_j
