"""Adaptive lookahead (stride coalescing) is an execution detail.

``FleetConfig.max_stride_windows=1`` runs the literal window-by-window
lockstep loop; larger values let the driver coalesce provably-idle
windows into one ``run_until`` span. Every observable — dispatch counts,
latencies, float energy, telemetry — must be bit-identical across stride
settings, including under faults (a fault-driven health episode
mid-schedule must split strides, not be skipped by one) and power
budgeting (strides must never cross a budget-period barrier).
"""

import numpy as np
import pytest

from repro.cluster import FleetConfig, FleetSystem
from repro.cluster.health import HealthPolicy
from repro.faults.scenarios import make_plan
from repro.system import ServerConfig
from repro.units import MS, US
from repro.workload.retry import RetryPolicy

DURATION = 25 * MS


def _node(**overrides):
    defaults = dict(app="memcached", load_level="medium",
                    freq_governor="nmap", n_cores=2)
    defaults.update(overrides)
    return ServerConfig(**defaults)


def _run(stride, **fleet_overrides):
    defaults = dict(node=_node(), n_nodes=3, seed=11,
                    max_stride_windows=stride)
    defaults.update(fleet_overrides)
    return FleetSystem(FleetConfig(**defaults)).run(DURATION)


def _assert_identical(a, b):
    assert a.sent == b.sent
    assert a.completed == b.completed
    assert a.dispatched == b.dispatched
    assert np.array_equal(a.latencies_ns, b.latencies_ns)
    assert a.energy.package_j == b.energy.package_j
    assert a.lockstep_windows == b.lockstep_windows
    for x, y in zip(a.node_results, b.node_results):
        assert np.array_equal(x.completion_times_ns, y.completion_times_ns)
        assert x.energy.package_j == y.energy.package_j


@pytest.mark.parametrize("policy", ["round-robin", "least-outstanding",
                                    "power-aware"])
def test_stride_settings_are_bit_identical(policy):
    base = _run(1, policy=policy)
    for stride in (4, 64):
        _assert_identical(base, _run(stride, policy=policy))


def test_strides_respect_budget_barriers():
    kwargs = dict(policy="power-aware", fleet_budget_w=40.0,
                  budget_period_ns=2 * MS)
    base = _run(1, **kwargs)
    coalesced = _run(64, **kwargs)
    _assert_identical(base, coalesced)
    assert base.rebalances == coalesced.rebalances
    assert base.rebalances > 0  # the barrier logic was actually exercised


@pytest.mark.parametrize("scenario", ["node-kill", "irq-storm"])
def test_fault_window_splits_the_stride(scenario):
    """A health episode mid-schedule (blackout / IRQ storm on node 1)
    must produce identical marks, failovers, and redispatches whether or
    not idle windows around it are coalesced."""
    kwargs = dict(node=_node(retry=RetryPolicy()), policy="round-robin",
                  health=HealthPolicy(),
                  node_fault_plans={1: make_plan(scenario, DURATION)})
    base = _run(1, **kwargs)
    coalesced = _run(64, **kwargs)
    _assert_identical(base, coalesced)
    for name in ("lb_marked_down_total", "lb_failovers_total",
                 "lb_redispatched_total", "lb_probes_total"):
        assert (base.telemetry.total(name)
                == coalesced.telemetry.total(name)), name
    if scenario == "node-kill":
        assert base.telemetry.total("lb_marked_down_total") > 0


def test_prefed_fleet_collapses_to_one_stride():
    """Feedback-free dispatch with no budget and no health checking has
    no barrier reads at all: the whole run is one span."""
    result = _run(64, policy="round-robin")
    assert result.perf is not None
    assert result.perf.strides == 1
    assert result.perf.windows == result.lockstep_windows
    assert result.perf.coalesce_ratio == result.lockstep_windows


def test_windowed_fleet_coalesces_idle_gaps():
    """A lightly-loaded feedback-policy fleet has empty windows between
    arrival bursts; the driver must actually exploit them."""
    result = _run(64, node=_node(load_level="low", n_cores=1),
                  policy="least-outstanding")
    assert result.perf is not None
    assert result.perf.strides < result.perf.windows
    assert result.perf.max_stride > 1
    # And the coalesced run still counts base windows.
    assert result.lockstep_windows == -(-DURATION // 5_000)


def test_stride_one_counts_every_window_as_a_stride():
    result = _run(1, policy="least-outstanding")
    assert result.perf is not None
    assert result.perf.strides == result.perf.windows
    assert result.perf.max_stride == 1


def test_lockstep_window_count_is_stride_invariant():
    window_ns = 3 * US
    for stride in (1, 64):
        result = _run(stride, policy="least-outstanding",
                      lb_wire_latency_ns=window_ns)
        assert result.lockstep_windows == -(-DURATION // window_ns)
