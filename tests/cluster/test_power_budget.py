"""P-state caps and the fleet power-budget coordinator."""

import pytest

from repro.cluster import FleetConfig, PowerBudgetCoordinator, run_fleet
from repro.cpu.topology import CHIP_WIDE, PER_CORE, Processor
from repro.system import ServerConfig
from repro.units import MS


# --------------------------------------------------------------------- #
# Processor.set_pstate_cap
# --------------------------------------------------------------------- #

def test_cap_floors_per_core_requests(sim):
    proc = Processor(sim, n_cores=2, dvfs_domain=PER_CORE)
    proc.set_pstate_cap(5)
    proc.request_pstate(0, 0)   # governor wants P0 (fastest)
    proc.request_pstate(1, 10)  # slower than the cap: untouched
    sim.run_until(5 * MS)
    assert proc.cores[0].pstate_index == 5
    assert proc.cores[1].pstate_index == 10


def test_relaxing_cap_restores_governor_intent(sim):
    proc = Processor(sim, n_cores=1, dvfs_domain=PER_CORE)
    proc.request_pstate(0, 0)
    proc.set_pstate_cap(8)
    sim.run_until(5 * MS)
    assert proc.cores[0].pstate_index == 8
    proc.set_pstate_cap(0)
    sim.run_until(10 * MS)
    assert proc.cores[0].pstate_index == 0


def test_tightening_cap_throttles_immediately(sim):
    proc = Processor(sim, n_cores=2, dvfs_domain=PER_CORE)
    proc.request_pstate(0, 0)
    proc.request_pstate(1, 2)
    sim.run_until(5 * MS)
    proc.set_pstate_cap(6)
    sim.run_until(10 * MS)
    assert [c.pstate_index for c in proc.cores] == [6, 6]
    assert proc.pstate_cap_index == 6


def test_cap_applies_to_chip_wide_domain(sim):
    proc = Processor(sim, n_cores=2, dvfs_domain=CHIP_WIDE)
    proc.request_pstate(0, 0)
    proc.request_pstate(1, 10)
    proc.set_pstate_cap(4)
    sim.run_until(5 * MS)
    # Fastest request (P0) floors at the cap, applied chip-wide.
    assert [c.pstate_index for c in proc.cores] == [4, 4]


def test_cap_is_clamped_to_table(sim):
    proc = Processor(sim, n_cores=1)
    proc.set_pstate_cap(999)
    assert proc.pstate_cap_index == len(proc.pstates) - 1
    proc.set_pstate_cap(-3)
    assert proc.pstate_cap_index == 0


# --------------------------------------------------------------------- #
# PowerBudgetCoordinator
# --------------------------------------------------------------------- #

class _System:
    def __init__(self, sim, n_cores=1):
        self.processor = Processor(sim, n_cores=n_cores)


def test_shares_split_evenly_when_idle(sim):
    systems = [_System(sim), _System(sim)]
    coord = PowerBudgetCoordinator(systems, budget_w=20.0, floor_frac=0.5)
    assert coord.shares([0, 0]) == [10.0, 10.0]


def test_shares_follow_load_above_the_floor(sim):
    systems = [_System(sim), _System(sim)]
    coord = PowerBudgetCoordinator(systems, budget_w=20.0, floor_frac=0.5)
    shares = coord.shares([3, 1])
    # Floor 5 W each; 10 W spare split 3:1.
    assert shares == [pytest.approx(12.5), pytest.approx(7.5)]
    assert sum(shares) == pytest.approx(20.0)


def test_cap_for_share_is_monotone(sim):
    coord = PowerBudgetCoordinator([_System(sim)], budget_w=50.0)
    caps = [coord.cap_for_share(0, w) for w in (50.0, 10.0, 5.0, 0.1)]
    assert caps == sorted(caps)
    assert caps[0] == 0          # a generous share uncaps
    assert caps[-1] == len(_System(sim).processor.pstates) - 1


def test_rebalance_respects_period(sim):
    coord = PowerBudgetCoordinator([_System(sim)], budget_w=50.0,
                                   period_ns=10 * MS)
    assert not coord.maybe_rebalance(5 * MS)
    assert coord.maybe_rebalance(10 * MS)
    assert not coord.maybe_rebalance(15 * MS)
    assert coord.maybe_rebalance(20 * MS)
    assert coord.rebalances == 2


def test_release_lifts_all_caps(sim):
    systems = [_System(sim), _System(sim)]
    coord = PowerBudgetCoordinator(systems, budget_w=1.0)
    coord.maybe_rebalance(20 * MS)
    assert all(s.processor.pstate_cap_index > 0 for s in systems)
    coord.release()
    assert all(s.processor.pstate_cap_index == 0 for s in systems)


def test_validation(sim):
    with pytest.raises(ValueError):
        PowerBudgetCoordinator([_System(sim)], budget_w=0.0)
    with pytest.raises(ValueError):
        PowerBudgetCoordinator([_System(sim)], budget_w=5.0, period_ns=0)
    with pytest.raises(ValueError):
        PowerBudgetCoordinator([_System(sim)], budget_w=5.0,
                               floor_frac=1.5)


def test_budget_caps_fleet_energy():
    """End to end: a tight budget must cut a performance fleet's energy."""
    node = ServerConfig(app="memcached", load_level="low",
                        freq_governor="performance", n_cores=1)
    base = FleetConfig(node=node, n_nodes=2, policy="least-outstanding",
                       seed=5)
    free = run_fleet(base, 60 * MS)
    capped_cfg = base.with_overrides(fleet_budget_w=10.0,
                                     budget_period_ns=5 * MS)
    capped = run_fleet(capped_cfg, 60 * MS)
    assert capped.rebalances > 0
    assert capped.energy_j < free.energy_j
    duration_s = 60 * MS / 1e9
    assert capped.energy_j / duration_s <= 10.0 * 1.05
