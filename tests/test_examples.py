"""Smoke tests: the example scripts run and print what they promise."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=300):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout, check=True)


@pytest.mark.slow
def test_quickstart():
    proc = run_example("quickstart.py", "performance")
    assert "P99 vs SLO" in proc.stdout
    assert "OK" in proc.stdout


@pytest.mark.slow
def test_bursty_trace():
    proc = run_example("bursty_trace.py", "performance")
    assert "polling pkts" in proc.stdout
    assert "frequency" in proc.stdout


@pytest.mark.slow
def test_sleep_states():
    proc = run_example("sleep_states.py", "low")
    assert "sleep policy" in proc.stdout
    assert "c6only" in proc.stdout


@pytest.mark.slow
def test_changing_load_short():
    proc = run_example("changing_load.py", "1")
    assert "parties" in proc.stdout
    assert "nmap" in proc.stdout
