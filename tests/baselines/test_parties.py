"""Parties-style feedback manager."""

import numpy as np
import pytest

from repro.baselines.parties import PartiesManager
from repro.cpu.topology import Processor
from repro.units import MS


class FakeClient:
    def __init__(self):
        self._lat = []

    def push(self, values):
        self._lat.extend(values)

    def latencies_ns(self):
        return np.array(self._lat, dtype=np.int64)


@pytest.fixture
def setup(sim):
    proc = Processor(sim, n_cores=2)
    client = FakeClient()
    manager = PartiesManager(sim, proc, client, slo_ns=1 * MS,
                             period_ns=10 * MS, initial_index=8)
    return proc, client, manager


def test_initial_index_applied(sim, setup):
    proc, _, manager = setup
    manager.start()
    sim.run_until(5 * MS)
    assert all(c.pstate_index == 8 for c in proc.cores)


def test_violation_steps_up_aggressively(sim, setup):
    proc, client, manager = setup
    manager.start()
    client.push([2 * MS] * 100)  # p99 = 2x SLO
    sim.run_until(15 * MS)
    assert manager.index == 6  # 8 - violation_step(2)


def test_tight_slack_steps_up_one(sim, setup):
    proc, client, manager = setup
    manager.start()
    client.push([int(0.95 * MS)] * 100)  # slack 5% < 10%
    sim.run_until(15 * MS)
    assert manager.index == 7


def test_generous_slack_steps_down(sim, setup):
    proc, client, manager = setup
    manager.start()
    client.push([int(0.2 * MS)] * 100)  # slack 80% > 45%
    sim.run_until(15 * MS)
    assert manager.index == 9


def test_comfortable_band_holds(sim, setup):
    proc, client, manager = setup
    manager.start()
    client.push([int(0.7 * MS)] * 100)  # slack 30%: inside the band
    sim.run_until(15 * MS)
    assert manager.index == 8
    assert manager.adjustments == 0


def test_empty_window_is_skipped(sim, setup):
    _, _, manager = setup
    manager.start()
    sim.run_until(15 * MS)
    assert manager.index == 8


def test_only_new_latencies_count(sim, setup):
    proc, client, manager = setup
    manager.start()
    client.push([2 * MS] * 100)
    sim.run_until(15 * MS)
    assert manager.index == 6
    # No new samples: the old violation is not re-counted.
    sim.run_until(25 * MS)
    assert manager.index == 6


def test_index_clamped_at_p0(sim, setup):
    proc, client, manager = setup
    manager.start()
    for k in range(10):
        client.push([5 * MS] * 50)
        sim.run_until((15 + 10 * k) * MS)
    assert manager.index == 0


def test_validation(sim):
    proc = Processor(sim, n_cores=1)
    with pytest.raises(ValueError):
        PartiesManager(sim, proc, FakeClient(), slo_ns=0)
    with pytest.raises(ValueError):
        PartiesManager(sim, proc, FakeClient(), slo_ns=1 * MS,
                       up_slack=0.5, down_slack=0.4)
