"""Per-request DVFS baseline (the Sec. 5.1 executable argument)."""

import pytest

from repro.baselines.per_request import (PerRequestDvfsManager,
                                         ideal_latency_model)
from repro.system import ServerConfig, ServerSystem
from repro.units import MS, US


def run(governor, seed=4):
    config = ServerConfig(app="memcached", load_level="high",
                          freq_governor=governor, n_cores=1, seed=seed)
    system = ServerSystem(config)
    return system, system.run(200 * MS)


def test_ideal_latency_model_is_flat():
    model = ideal_latency_model(16)
    assert model.mean_latency_ns(0, 15, retransition=True) == 50.0
    assert model.mean_latency_ns(15, 0, retransition=False) == 50.0


def test_ideal_transitions_meet_slo():
    system, result = run("per-request-dvfs-ideal")
    assert result.slo_result().satisfied
    assert system.manager.decisions > 0


def test_real_retransition_latency_breaks_the_scheme():
    _, real = run("per-request-dvfs")
    _, ideal = run("per-request-dvfs-ideal")
    assert real.p99_ns > ideal.p99_ns


def test_many_decisions_cause_retransitions_on_real_hardware():
    system, _ = run("per-request-dvfs")
    retransitions = sum(d.retransitions for d in system.processor.dvfs)
    assert retransitions > 100


def test_stop_restores_models_and_consumers():
    system, _ = run("per-request-dvfs-ideal")
    # run() already called stop(); consumers must be the app workers again.
    from repro.apps.base import AppWorkerThread
    assert all(isinstance(s.consumer, AppWorkerThread)
               for s in system.stack.sockets)


def test_validation(sim):
    with pytest.raises(ValueError):
        PerRequestDvfsManager(None, None, None, slo_ns=0)
    with pytest.raises(ValueError):
        PerRequestDvfsManager(None, None, None, slo_ns=1, headroom=0.5)
