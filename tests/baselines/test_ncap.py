"""Software NCAP baseline."""

import pytest

from repro.baselines.ncap import (NcapManager, STATE_BOOST, STATE_DECAY,
                                  STATE_NORMAL)
from repro.cpu.topology import Processor
from repro.governors.ondemand import OndemandGovernor
from repro.nic.nic import MultiQueueNic
from repro.nic.packet import Packet
from repro.nic.rss import RssDistributor
from repro.units import MS
from repro.workload.request import Request


@pytest.fixture
def setup(sim):
    proc = Processor(sim, n_cores=2)
    nic = MultiQueueNic(sim, n_queues=2,
                        rss=RssDistributor(2, mode="round-robin"))
    for q in range(2):
        nic.bind(q, lambda qid: None)
        nic.disable_irq(q)  # park packets; NCAP only reads counters
    fallbacks = [OndemandGovernor(sim, proc, cid) for cid in range(2)]
    manager = NcapManager(sim, proc, nic, fallbacks,
                          threshold_rps=100_000, period_ns=1 * MS)
    return proc, nic, manager


def inject(nic, count):
    for i in range(count):
        nic.receive(Packet(flow_id=i, size_bytes=100, created_ns=0,
                           request=Request(flow_id=i, created_ns=0)))


def test_boost_on_excessive_rate(sim, setup):
    proc, nic, manager = setup
    manager.start()
    inject(nic, 500)  # 500 pkts / 1 ms = 500 KRPS > 100 K
    sim.run_until(1 * MS + 500_000)  # just after the first window
    assert manager.state == STATE_BOOST
    assert manager.boosts == 1
    sim.run_until(2 * MS)
    assert all(c.pstate_index == 0 for c in proc.cores)


def test_boost_disables_sleep(sim, setup):
    proc, nic, manager = setup
    manager.start()
    inject(nic, 500)
    sim.run_until(1 * MS + 500_000)
    assert all(c.idle_governor is manager._disable_idle
               for c in proc.cores)


def test_ncap_menu_variant_keeps_idle_governor(sim):
    proc = Processor(sim, n_cores=1)
    nic = MultiQueueNic(sim, n_queues=1)
    nic.bind(0, lambda q: None)
    nic.disable_irq(0)
    sentinel = object()
    proc.cores[0].idle_governor = sentinel
    manager = NcapManager(sim, proc, nic,
                          [OndemandGovernor(sim, proc, 0)],
                          threshold_rps=1_000, period_ns=1 * MS,
                          disable_sleep_in_boost=False)
    manager.start()
    for i in range(500):
        nic.receive(Packet(flow_id=0, size_bytes=64, created_ns=0,
                           request=Request(flow_id=0, created_ns=0)))
    sim.run_until(1 * MS + 500_000)
    assert manager.state == STATE_BOOST
    assert proc.cores[0].idle_governor is sentinel


def test_quiet_windows_decay_then_release(sim, setup):
    proc, nic, manager = setup
    manager.start()
    inject(nic, 500)
    sim.run_until(1 * MS + 500_000)
    assert manager.state == STATE_BOOST
    sim.run_until(60 * MS)  # many quiet windows
    assert manager.state == STATE_NORMAL
    assert all(not gov.suspended for gov in manager.fallbacks)
    # Sleep governors restored.
    assert all(c.idle_governor is not manager._disable_idle
               for c in proc.cores)


def test_reboost_during_decay(sim, setup):
    proc, nic, manager = setup
    manager.start()
    inject(nic, 500)
    sim.run_until(1 * MS + 500_000)
    assert manager.state == STATE_BOOST
    sim.run_until(2 * MS + 500_000)  # one quiet window -> DECAY
    assert manager.state in (STATE_DECAY, STATE_NORMAL)
    inject(nic, 500)
    sim.run_until(3 * MS + 500_000)
    assert manager.state == STATE_BOOST


def test_acks_do_not_count_toward_threshold(sim, setup):
    proc, nic, manager = setup
    manager.start()
    for _ in range(500):
        nic.receive(Packet(flow_id=0, size_bytes=64, created_ns=0,
                           kind="ack"))
    sim.run_until(3 * MS)
    assert manager.state == STATE_NORMAL


def test_validation(sim, setup):
    proc, nic, _ = setup
    with pytest.raises(ValueError):
        NcapManager(sim, proc, nic, [], threshold_rps=1)
    with pytest.raises(ValueError):
        NcapManager(sim, proc, nic,
                    [OndemandGovernor(sim, proc, 0)] * 2, threshold_rps=0)
