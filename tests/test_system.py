"""ServerSystem facade."""

import pytest

from repro.system import (DEFAULT_NMAP_THRESHOLDS, RunResult, ServerConfig,
                          ServerSystem, run_server)
from repro.units import MS
from repro.workload.shapes import ConstantLoad


def test_default_config_builds():
    system = ServerSystem(ServerConfig())
    assert system.processor.n_cores == 2
    assert len(system.stack.napis) == 2
    assert len(system.workers) == 2


def test_config_with_overrides():
    config = ServerConfig(app="memcached", n_cores=2)
    other = config.with_overrides(app="nginx", n_cores=4)
    assert other.app == "nginx" and other.n_cores == 4
    assert config.app == "memcached"  # original untouched


def test_unknown_governor_rejected():
    with pytest.raises(ValueError):
        ServerSystem(ServerConfig(freq_governor="warp-speed"))


def test_unknown_processor_rejected():
    with pytest.raises(ValueError):
        ServerSystem(ServerConfig(processor="M1"))


def test_run_returns_complete_result():
    config = ServerConfig(app="memcached", load_level="low",
                          freq_governor="performance", n_cores=1, seed=8)
    result = run_server(config, 50 * MS)
    assert isinstance(result, RunResult)
    assert result.sent > 0
    assert result.completed == result.sent
    assert result.energy_j > 0
    assert result.slo_ns == 1 * MS
    assert result.latencies_ns.size == result.completed


def test_custom_load_shape_is_per_core_scaled():
    config = ServerConfig(load_shape=ConstantLoad(10_000), n_cores=2,
                          freq_governor="performance", seed=8)
    system = ServerSystem(config)
    assert system.load_shape.mean_rps() == pytest.approx(20_000)


def test_seed_reproducibility():
    config = ServerConfig(app="memcached", load_level="low",
                          freq_governor="ondemand", n_cores=1, seed=99)
    a = ServerSystem(config).run(50 * MS)
    b = ServerSystem(config).run(50 * MS)
    assert a.sent == b.sent
    assert (a.latencies_ns == b.latencies_ns).all()
    assert a.energy_j == pytest.approx(b.energy_j)


def test_different_seeds_differ():
    config = ServerConfig(app="memcached", load_level="low", n_cores=1)
    a = ServerSystem(config.with_overrides(seed=1)).run(50 * MS)
    b = ServerSystem(config.with_overrides(seed=2)).run(50 * MS)
    assert a.sent != b.sent or (a.latencies_ns != b.latencies_ns).any()


def test_energy_measured_over_run_window_only():
    config = ServerConfig(app="memcached", load_level="low",
                          freq_governor="performance", n_cores=1, seed=8)
    result = ServerSystem(config).run(50 * MS)
    # 50 ms at a sane power level: single-digit joules.
    assert 0.01 < result.energy_j < 10


def test_trace_disabled_by_default():
    config = ServerConfig(app="memcached", load_level="low", n_cores=1,
                          seed=8)
    result = ServerSystem(config).run(20 * MS)
    assert list(result.trace.channels()) == []


def test_trace_enabled_records_pstates_and_modes():
    config = ServerConfig(app="memcached", load_level="high", n_cores=1,
                          freq_governor="ondemand", seed=8, trace=True)
    result = ServerSystem(config).run(120 * MS)
    assert "core0.pstate" in result.trace
    assert "core0.pkts_interrupt" in result.trace


def test_default_thresholds_exist_for_both_apps():
    assert set(DEFAULT_NMAP_THRESHOLDS) == {"memcached", "nginx"}
    for th in DEFAULT_NMAP_THRESHOLDS.values():
        assert th.ni_th > 0 and th.cu_th > 0


def test_run_rejects_bad_duration():
    system = ServerSystem(ServerConfig(n_cores=1))
    with pytest.raises(ValueError):
        system.run(0)


def test_chip_wide_domain_builds_and_runs():
    config = ServerConfig(app="memcached", load_level="low", n_cores=2,
                          dvfs_domain="chip-wide",
                          freq_governor="ondemand", seed=8)
    result = ServerSystem(config).run(30 * MS)
    assert result.completed > 0
