"""System integration of the mode-aware sleep extension."""

import pytest

from repro.system import ServerConfig, ServerSystem
from repro.units import MS


def test_nmap_sleep_requires_nmap_family():
    config = ServerConfig(freq_governor="ondemand",
                          idle_governor="nmap-sleep")
    with pytest.raises(ValueError):
        ServerSystem(config)


def test_nmap_sleep_runs_and_meets_slo():
    config = ServerConfig(app="memcached", load_level="high",
                          freq_governor="nmap", idle_governor="nmap-sleep",
                          n_cores=1, seed=6)
    system = ServerSystem(config)
    result = system.run(200 * MS)
    assert result.slo_result().satisfied
    # Engines were registered for every core.
    assert set(system.idle_governor.engines) == {0}


def test_nmap_sleep_caps_depth_during_bursts():
    config = ServerConfig(app="memcached", load_level="high",
                          freq_governor="nmap", idle_governor="nmap-sleep",
                          n_cores=1, seed=6)
    system = ServerSystem(config)
    system.run(200 * MS)
    assert system.idle_governor.capped_selections > 0


def test_nmap_sleep_works_with_adaptive_nmap():
    config = ServerConfig(app="memcached", load_level="medium",
                          freq_governor="nmap-adaptive",
                          idle_governor="nmap-sleep", n_cores=1, seed=6)
    result = ServerSystem(config).run(150 * MS)
    assert result.completed == result.sent
