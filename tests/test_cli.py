"""The `python -m repro` and `python -m repro.experiments` CLIs."""

import pytest

from repro.__main__ import build_parser, main as repro_main
from repro.experiments.__main__ import main as experiments_main


def test_parser_defaults():
    args = build_parser().parse_args([])
    assert args.app == "memcached"
    assert args.governor == "nmap"
    assert args.cores == 2


def test_run_cli_exits_zero_on_slo_ok(capsys):
    code = repro_main(["--level", "low", "--governor", "performance",
                       "--cores", "1", "--duration-ms", "30"])
    out = capsys.readouterr().out
    assert code == 0
    assert "SLO" in out and "OK" in out


def test_run_cli_exits_nonzero_on_violation(capsys):
    code = repro_main(["--level", "high", "--governor", "powersave",
                       "--cores", "1", "--duration-ms", "120"])
    assert code == 1
    assert "VIOLATED" in capsys.readouterr().out


def test_cli_rejects_unknown_governor():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--governor", "quantum"])


def test_experiments_cli_rejects_unknown_id():
    with pytest.raises(SystemExit):
        experiments_main(["fig99"])


@pytest.mark.slow
def test_experiments_cli_runs_one_artifact(capsys, tmp_path):
    report = tmp_path / "report.md"
    code = experiments_main(["tab2", "--markdown", str(report)])
    out = capsys.readouterr().out
    assert code == 0
    assert "tab2" in out
    assert report.exists()
    assert "tab2" in report.read_text()
