"""The `python -m repro` and `python -m repro.experiments` CLIs."""

import pytest

from repro.__main__ import build_parser, main as repro_main
from repro.experiments.__main__ import main as experiments_main


def test_parser_defaults():
    args = build_parser().parse_args([])
    assert args.app == "memcached"
    assert args.governor == "nmap"
    assert args.cores == 2


def test_run_cli_exits_zero_on_slo_ok(capsys):
    code = repro_main(["--level", "low", "--governor", "performance",
                       "--cores", "1", "--duration-ms", "30"])
    out = capsys.readouterr().out
    assert code == 0
    assert "SLO" in out and "OK" in out


def test_run_cli_exits_nonzero_on_violation(capsys):
    code = repro_main(["--level", "high", "--governor", "powersave",
                       "--cores", "1", "--duration-ms", "120"])
    assert code == 1
    assert "VIOLATED" in capsys.readouterr().out


def test_cli_rejects_unknown_governor():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--governor", "quantum"])


def test_experiments_cli_rejects_unknown_id():
    with pytest.raises(SystemExit):
        experiments_main(["fig99"])


@pytest.mark.slow
def test_experiments_cli_runs_one_artifact(capsys, tmp_path):
    report = tmp_path / "report.md"
    code = experiments_main(["tab2", "--markdown", str(report)])
    out = capsys.readouterr().out
    assert code == 0
    assert "tab2" in out
    assert report.exists()
    assert "tab2" in report.read_text()


def test_trace_subcommand_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        experiments_main(["trace", "fig99"])


def test_trace_subcommand_writes_perfetto_json(capsys, tmp_path,
                                               monkeypatch):
    import json
    monkeypatch.chdir(tmp_path)
    out = tmp_path / "t.json"
    code = experiments_main(["trace", "tab2", "--governor", "performance",
                             "--load", "low", "--out", str(out),
                             "--sample-rate", "0.5"])
    printed = capsys.readouterr().out
    assert code == 0
    assert "max span-tiling error 0 ns" in printed
    doc = json.loads(out.read_text())
    assert any(e.get("ph") == "X" for e in doc["traceEvents"])
    assert doc["otherData"]["freq_governor"] == "performance"


def test_report_subcommand_telemetry_and_prometheus(capsys, tmp_path):
    prom = tmp_path / "metrics.txt"
    code = experiments_main(["report", "tab2", "--governor", "performance",
                             "--load", "low", "--telemetry",
                             "--prometheus", str(prom)])
    printed = capsys.readouterr().out
    assert code == 0
    assert "requests_completed_total" in printed
    assert "# TYPE requests_completed_total counter" in prom.read_text()


def test_list_subcommand_names_every_experiment(capsys):
    from repro.experiments.registry import EXPERIMENTS
    assert experiments_main(["list"]) == 0
    out = capsys.readouterr().out
    for experiment_id in EXPERIMENTS:
        assert experiment_id in out
    assert "fleet_tail" in out
    assert "fleet_energy" in out
