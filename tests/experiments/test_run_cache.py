"""The persistent (on-disk) run cache behind run_cached."""

import numpy as np
import pytest

from repro.experiments import runner
from repro.experiments.confighash import MODEL_VERSION
from repro.system import ServerConfig
from repro.units import MS

CONFIG = ServerConfig(app="memcached", load_level="low",
                      freq_governor="performance", n_cores=1, seed=77)


@pytest.fixture
def disk_cache(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_RUN_CACHE", raising=False)
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    runner.set_cache_dir(tmp_path)
    runner.clear_cache()
    runner.reset_cache_stats()
    yield tmp_path
    runner.clear_cache()
    runner.set_cache_dir(None)
    runner.reset_cache_stats()


def test_fresh_run_is_served_from_disk_in_a_fresh_process(disk_cache):
    result = runner.run_cached(CONFIG, 15 * MS)
    stats = runner.cache_stats()
    assert stats.fresh_runs == 1
    assert stats.disk_writes == 1
    assert len(list(runner.cache_dir().glob("*.pkl"))) == 1
    # Dropping the memo models a fresh process: the second invocation is
    # a disk hit and reproduces the run exactly.
    runner._cache.clear()
    runner.reset_cache_stats()
    again = runner.run_cached(CONFIG, 15 * MS)
    stats = runner.cache_stats()
    assert stats.disk_hits == 1
    assert stats.fresh_runs == 0
    assert again is not result
    assert again.completed == result.completed
    assert np.array_equal(again.latencies_ns, result.latencies_ns)
    assert again.energy.package_j == result.energy.package_j


def test_peek_cached_never_simulates(disk_cache):
    assert runner.peek_cached(CONFIG, 15 * MS) is None
    runner.run_cached(CONFIG, 15 * MS)
    runner._cache.clear()
    assert runner.peek_cached(CONFIG, 15 * MS) is not None
    assert runner.cache_stats().fresh_runs == 1  # only the explicit run


def test_cache_dir_is_model_version_namespaced(disk_cache):
    assert runner.cache_dir().name == MODEL_VERSION
    assert runner.cache_dir().parent == disk_cache


def test_clear_cache_removes_only_this_models_namespace(disk_cache):
    runner.run_cached(CONFIG, 15 * MS)
    assert runner.cache_dir().is_dir()
    other = disk_cache / (MODEL_VERSION + "-other")
    other.mkdir()
    (other / "keep.pkl").write_bytes(b"x")
    runner.clear_cache()
    assert not runner.cache_dir().exists()
    assert (other / "keep.pkl").exists()
    assert runner.cache_size() == 0


def test_env_knob_disables_persistence(disk_cache, monkeypatch):
    monkeypatch.setenv("REPRO_RUN_CACHE", "0")
    assert not runner.disk_cache_enabled()
    runner.run_cached(CONFIG, 15 * MS)
    assert not runner.cache_dir().exists()
    assert runner.cache_stats().disk_writes == 0
    # The in-process memo still works.
    runner.run_cached(CONFIG, 15 * MS)
    assert runner.cache_stats().memo_hits == 1


def test_corrupt_disk_entry_is_a_miss(disk_cache):
    runner.run_cached(CONFIG, 15 * MS)
    [path] = runner.cache_dir().glob("*.pkl")
    path.write_bytes(b"not a pickle")
    runner._cache.clear()
    runner.reset_cache_stats()
    runner.run_cached(CONFIG, 15 * MS)
    stats = runner.cache_stats()
    assert stats.disk_hits == 0
    assert stats.fresh_runs == 1
