"""Experiment runner cache and registry."""

import pytest

from repro.experiments.base import FULL, QUICK, ExperimentResult
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.runner import cache_size, clear_cache, run_cached
from repro.system import ServerConfig
from repro.units import MS


def test_all_paper_artifacts_registered():
    paper_artifacts = ["fig2", "fig3", "fig4", "tab1", "tab2", "fig7",
                       "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
                       "fig14", "fig15", "fig16"]
    for artifact in paper_artifacts:
        assert artifact in EXPERIMENTS
    # Plus the SLO-calibration procedure behind Sec. 3.1.
    assert "slo" in EXPERIMENTS


def test_unknown_experiment_rejected():
    with pytest.raises(ValueError):
        run_experiment("fig99")


def test_scales():
    assert QUICK.n_cores == 2
    assert FULL.n_cores == 8
    assert FULL.duration_ns > QUICK.duration_ns


def test_run_cached_memoizes():
    clear_cache()
    config = ServerConfig(app="memcached", load_level="low",
                          freq_governor="performance", n_cores=1, seed=77)
    a = run_cached(config, 20 * MS)
    assert cache_size() == 1
    b = run_cached(config, 20 * MS)
    assert a is b
    clear_cache()
    assert cache_size() == 0


def test_different_configs_cached_separately():
    clear_cache()
    base = ServerConfig(app="memcached", load_level="low", n_cores=1,
                        freq_governor="performance", seed=77)
    run_cached(base, 20 * MS)
    run_cached(base.with_overrides(seed=78), 20 * MS)
    assert cache_size() == 2
    clear_cache()


def test_experiment_result_rendering():
    result = ExperimentResult(
        experiment_id="figX", title="demo", headers=["a"], rows=[[1]],
        expectations={"it works": True, "it fails": False},
        notes="a note")
    text = result.render()
    assert "figX: demo" in text
    assert "[x] it works" in text
    assert "[ ] it fails" in text
    assert "a note" in text
    assert not result.all_expectations_met


@pytest.mark.slow
def test_tab1_quick_run_meets_expectations():
    result = run_experiment("tab1")
    assert result.all_expectations_met
    assert len(result.rows) == 24  # 4 processors x 6 transitions


@pytest.mark.slow
def test_tab2_quick_run_meets_expectations():
    result = run_experiment("tab2")
    assert result.all_expectations_met
    assert len(result.rows) == 8  # 4 processors x 2 transitions
