"""Stable config hashing (the cache key of every run)."""

import dataclasses

import numpy as np
import pytest

import repro.experiments.confighash as confighash
from repro.cluster.fleet import FleetConfig
from repro.experiments.confighash import (HASHED_FIELDS, MODEL_VERSION,
                                          canonicalize, config_digest,
                                          run_key)
from repro.system import ServerConfig
from repro.units import MS


def test_equal_configs_hash_identically():
    a = ServerConfig(app="nginx", load_level="low", n_cores=2, seed=9)
    b = ServerConfig(seed=9, n_cores=2, load_level="low", app="nginx")
    assert a == b
    assert config_digest(a) == config_digest(b)
    assert run_key(a, 20 * MS) == run_key(b, 20 * MS)


def test_dict_insertion_order_does_not_matter():
    a = ServerConfig(app_params={"x": 1, "y": 2},
                     freq_governor_params={"up": 0.8, "down": 0.2})
    b = ServerConfig(app_params={"y": 2, "x": 1},
                     freq_governor_params={"down": 0.2, "up": 0.8})
    assert run_key(a, 20 * MS) == run_key(b, 20 * MS)


def test_any_field_change_changes_key():
    base = ServerConfig()
    key = run_key(base, 20 * MS)
    assert run_key(base.with_overrides(seed=1), 20 * MS) != key
    assert run_key(base.with_overrides(n_cores=4), 20 * MS) != key
    assert run_key(base.with_overrides(app_params={"z": 1}), 20 * MS) != key
    assert run_key(base, 21 * MS) != key


def test_model_version_namespaces_keys(monkeypatch):
    base = ServerConfig()
    key = confighash.run_key(base, MS)
    monkeypatch.setattr(confighash, "MODEL_VERSION",
                        MODEL_VERSION + "-other")
    assert confighash.run_key(base, MS) != key


def test_canonicalize_primitives_and_numpy():
    assert canonicalize(np.int64(5)) == 5
    assert canonicalize(np.float64(1.5)) == 1.5
    assert (canonicalize(np.array([1, 2, 3]))
            == canonicalize(np.array([1, 2, 3])))
    assert (canonicalize(np.array([1, 2, 3]))
            != canonicalize(np.array([1, 2, 4])))
    assert canonicalize({"b": 1, "a": 2}) == canonicalize({"a": 2, "b": 1})
    assert canonicalize((1, "x")) == canonicalize([1, "x"])


def test_plain_objects_canonicalize_by_class_and_state():
    class Shape:
        def __init__(self, rate):
            self.rate = rate

    assert canonicalize(Shape(10)) == canonicalize(Shape(10))
    assert canonicalize(Shape(10)) != canonicalize(Shape(11))


# --------------------------------------------------------------------- #
# The HASHED_FIELDS registry (audited by the H001/H002 flow rules)
# --------------------------------------------------------------------- #

def test_registry_digests_are_pinned():
    """Digests only move when the config schema does.

    Re-pinned for the 2026.08-pr10 schema (ServerConfig grew
    `pipeline` / `flow_weights`, with a MODEL_VERSION bump retiring
    the old cache namespace). Any further drift without a schema
    change silently invalidates every cached run key.
    """
    server = ServerConfig(app="memcached", seed=7)
    assert config_digest(server) == (
        "c7c5415be318b4e4a6580a0a2b3a59b17a735845994431e436b213817d4146ef")
    fleet = FleetConfig(node=server, n_nodes=3, seed=11)
    assert config_digest(fleet) == (
        "3db3e92e186f2e3b179fdfc91f5c0c9a97afd3673d2ae25c16102392436a988e")
    assert run_key(server, 1_000_000) == (
        "81229e922bedd017226e767a52c19c58d96f8bb19000ca66a706b21a8169275b")


@pytest.mark.parametrize("cls", [ServerConfig, FleetConfig])
def test_registry_matches_dataclass_definition(cls):
    """Every declared field is listed, in definition order.

    Order matters: the registry feeds canonicalize positionally, so a
    reordered entry would change digests even with the same field set.
    """
    declared = tuple(f.name for f in dataclasses.fields(cls))
    assert HASHED_FIELDS[cls.__name__] == declared


def test_stale_registry_entry_fails_loudly(monkeypatch):
    """A registry naming a nonexistent field must never hash silently."""
    patched = dict(HASHED_FIELDS)
    patched["ServerConfig"] = HASHED_FIELDS["ServerConfig"] + ("ghost",)
    monkeypatch.setattr(confighash, "HASHED_FIELDS", patched)
    with pytest.raises(AttributeError):
        config_digest(ServerConfig())


def test_registry_omission_excludes_field_from_digest(monkeypatch):
    """Dropping a field from the registry changes what the hash sees.

    This is exactly the hazard rule H001 exists to catch statically:
    two configs differing only in the dropped field collide.
    """
    fields = HASHED_FIELDS["ServerConfig"]
    patched = dict(HASHED_FIELDS)
    patched["ServerConfig"] = tuple(f for f in fields if f != "seed")
    monkeypatch.setattr(confighash, "HASHED_FIELDS", patched)
    a = config_digest(ServerConfig(seed=1))
    b = config_digest(ServerConfig(seed=2))
    assert a == b


def test_unregistered_dataclasses_hash_generically():
    @dataclasses.dataclass(frozen=True)
    class Local:
        x: int = 1

    assert Local.__name__ not in HASHED_FIELDS
    assert config_digest(Local(x=1)) == config_digest(Local(x=1))
    assert config_digest(Local(x=1)) != config_digest(Local(x=2))
