"""Stable config hashing (the cache key of every run)."""

import numpy as np

import repro.experiments.confighash as confighash
from repro.experiments.confighash import (MODEL_VERSION, canonicalize,
                                          config_digest, run_key)
from repro.system import ServerConfig
from repro.units import MS


def test_equal_configs_hash_identically():
    a = ServerConfig(app="nginx", load_level="low", n_cores=2, seed=9)
    b = ServerConfig(seed=9, n_cores=2, load_level="low", app="nginx")
    assert a == b
    assert config_digest(a) == config_digest(b)
    assert run_key(a, 20 * MS) == run_key(b, 20 * MS)


def test_dict_insertion_order_does_not_matter():
    a = ServerConfig(app_params={"x": 1, "y": 2},
                     freq_governor_params={"up": 0.8, "down": 0.2})
    b = ServerConfig(app_params={"y": 2, "x": 1},
                     freq_governor_params={"down": 0.2, "up": 0.8})
    assert run_key(a, 20 * MS) == run_key(b, 20 * MS)


def test_any_field_change_changes_key():
    base = ServerConfig()
    key = run_key(base, 20 * MS)
    assert run_key(base.with_overrides(seed=1), 20 * MS) != key
    assert run_key(base.with_overrides(n_cores=4), 20 * MS) != key
    assert run_key(base.with_overrides(app_params={"z": 1}), 20 * MS) != key
    assert run_key(base, 21 * MS) != key


def test_model_version_namespaces_keys(monkeypatch):
    base = ServerConfig()
    key = confighash.run_key(base, MS)
    monkeypatch.setattr(confighash, "MODEL_VERSION",
                        MODEL_VERSION + "-other")
    assert confighash.run_key(base, MS) != key


def test_canonicalize_primitives_and_numpy():
    assert canonicalize(np.int64(5)) == 5
    assert canonicalize(np.float64(1.5)) == 1.5
    assert (canonicalize(np.array([1, 2, 3]))
            == canonicalize(np.array([1, 2, 3])))
    assert (canonicalize(np.array([1, 2, 3]))
            != canonicalize(np.array([1, 2, 4])))
    assert canonicalize({"b": 1, "a": 2}) == canonicalize({"a": 2, "b": 1})
    assert canonicalize((1, "x")) == canonicalize([1, "x"])


def test_plain_objects_canonicalize_by_class_and_state():
    class Shape:
        def __init__(self, rate):
            self.rate = rate

    assert canonicalize(Shape(10)) == canonicalize(Shape(10))
    assert canonicalize(Shape(10)) != canonicalize(Shape(11))
