"""Fast end-to-end runs of selected figure harnesses at a tiny scale.

The benchmarks run every harness at quick scale; these tests exercise the
harness *code paths* (tables, series, expectations) at a much smaller
scale so plain `pytest tests/` covers them too. Expectations are not
asserted here — some need the full quick scale to stabilize.
"""

import pytest

from repro.experiments import fig04_latency_cdf, fig10_nmap_latency, \
    fig11_nmap_cdf, robustness
from repro.experiments.base import ExperimentScale
from repro.experiments.runner import clear_cache
from repro.units import MS

TINY = ExperimentScale("tiny", n_cores=1, duration_ns=120 * MS, seed=5)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


@pytest.mark.slow
def test_fig4_harness_structure():
    result = fig04_latency_cdf.run(TINY)
    assert len(result.rows) == 4  # 2 apps x 2 governors
    assert set(result.series) == {"memcached/ondemand",
                                  "memcached/performance",
                                  "nginx/ondemand", "nginx/performance"}
    for series in result.series.values():
        assert (series["cdf"] <= 1.0).all()


@pytest.mark.slow
def test_fig10_fig11_share_runs():
    first = fig10_nmap_latency.run(TINY)
    from repro.experiments.runner import cache_size
    size_after_fig10 = cache_size()
    second = fig11_nmap_cdf.run(TINY)
    assert cache_size() == size_after_fig10  # fully cached
    assert len(first.rows) == 2
    assert len(second.rows) == 2


@pytest.mark.slow
def test_robustness_harness_structure():
    result = robustness.run(TINY)
    assert len(result.rows) == len(robustness.SEEDS) * len(
        robustness.GOVERNORS)
    assert "normalized_p99" in result.series