"""Parallel grid execution: worker resolution and result determinism."""

import numpy as np
import pytest

from repro.experiments import runner
from repro.experiments.parallel import (resolve_workers, run_many,
                                        using_workers)
from repro.system import ServerConfig
from repro.units import MS


def test_resolve_workers_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    assert resolve_workers() == 1
    monkeypatch.setenv("REPRO_WORKERS", "3")
    assert resolve_workers() == 3
    with using_workers(5):
        assert resolve_workers() == 5
        assert resolve_workers(2) == 2  # explicit beats ambient
    assert resolve_workers() == 3  # ambient restored on exit
    with pytest.raises(ValueError):
        monkeypatch.setenv("REPRO_WORKERS", "junk")
        resolve_workers()


def test_resolve_workers_floors_at_one():
    assert resolve_workers(0) == 1
    assert resolve_workers(-4) == 1


def _jobs():
    base = ServerConfig(app="memcached", load_level="low",
                        freq_governor="performance", n_cores=1)
    return [(base.with_overrides(seed=seed, idle_governor=gov), 15 * MS)
            for seed in (41, 42) for gov in ("menu", "disable")]


def test_run_many_serial_preserves_job_order(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    jobs = _jobs()
    runner.clear_cache()
    results = run_many(jobs, workers=1)
    assert len(results) == len(jobs)
    for result, (config, _) in zip(results, jobs):
        assert result.config.seed == config.seed
        assert result.config.idle_governor == config.idle_governor
    runner.clear_cache()


def test_serial_and_parallel_grids_bit_identical(tmp_path, monkeypatch):
    """The ISSUE's determinism constraint: fanning a grid over worker
    processes changes wall-clock only — every cell's RunResult matches
    the serial run bit for bit."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    jobs = _jobs()
    runner.clear_cache()
    serial = run_many(jobs, workers=1)
    runner.clear_cache()  # memo and disk: the parallel pass starts cold
    parallel = run_many(jobs, workers=2)
    assert len(serial) == len(parallel) == 4
    for a, b in zip(serial, parallel):
        assert a.sent == b.sent
        assert a.completed == b.completed
        assert a.dropped == b.dropped
        assert np.array_equal(a.latencies_ns, b.latencies_ns)
        assert np.array_equal(a.completion_times_ns, b.completion_times_ns)
        assert a.energy.package_j == b.energy.package_j
        assert a.pkts_interrupt_mode == b.pkts_interrupt_mode
        assert a.pkts_polling_mode == b.pkts_polling_mode
        assert a.ksoftirqd_wakeups == b.ksoftirqd_wakeups
    runner.clear_cache()


def test_parallel_results_seed_the_memo(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    jobs = _jobs()
    runner.clear_cache()
    first = run_many(jobs, workers=2)
    # The coordinating process memoized every worker result: re-running
    # the same jobs serves identities, no simulation.
    runner.reset_cache_stats()
    again = run_many(jobs, workers=2)
    assert all(a is b for a, b in zip(first, again))
    stats = runner.cache_stats()
    assert stats.memo_hits == len(jobs)
    assert stats.fresh_runs == 0
    runner.clear_cache()
