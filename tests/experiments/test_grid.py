"""Grid helpers shared by Figs. 12-15."""

import pytest

from repro.experiments.base import ExperimentScale
from repro.experiments.grid import (baseline_energy, run_cell, run_grid)
from repro.experiments.runner import clear_cache
from repro.units import MS

TINY = ExperimentScale("tiny", n_cores=1, duration_ns=30 * MS, seed=5)


def test_run_cell_returns_run_result():
    clear_cache()
    result = run_cell("memcached", "low", "performance", "menu", TINY)
    assert result.completed > 0
    clear_cache()


def test_run_grid_covers_all_combinations():
    clear_cache()
    results = run_grid(("performance",), ("menu", "disable"), TINY,
                       apps=("memcached",), levels=("low",))
    assert set(results) == {("memcached", "low", "performance", "menu"),
                            ("memcached", "low", "performance", "disable")}
    clear_cache()


def test_baseline_energy_requires_perf_menu_cell():
    clear_cache()
    results = run_grid(("performance",), ("menu",), TINY,
                       apps=("memcached",), levels=("low",))
    assert baseline_energy(results, "memcached", "low") > 0
    with pytest.raises(KeyError):
        baseline_energy(results, "nginx", "low")
    clear_cache()


def test_grid_reuses_cache():
    clear_cache()
    a = run_cell("memcached", "low", "performance", "menu", TINY)
    b = run_cell("memcached", "low", "performance", "menu", TINY)
    assert a is b
    clear_cache()
