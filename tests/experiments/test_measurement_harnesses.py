"""Direct tests of the Table 1/2 measurement functions."""

import numpy as np
import pytest

from repro.experiments.tab01_retransition import measure_retransition
from repro.experiments.tab02_wakeup import measure_wakeup
from repro.cpu.profiles import PROCESSOR_PROFILES
from repro.units import US


def test_retransition_measurement_matches_profile():
    profile = PROCESSOR_PROFILES["Gold-6134"]
    samples = measure_retransition("Gold-6134", 0, 1, n_reps=50)
    expected = profile.retransition_ns["small_down_high"][0]
    assert samples.mean() == pytest.approx(expected, rel=0.05)
    assert samples.std() < 20 * US


def test_retransition_desktop_vs_server_gap():
    desktop = measure_retransition("i7-6700", 13, 0, n_reps=30)
    server = measure_retransition("Gold-6134", 15, 0, n_reps=30)
    assert server.mean() > 8 * desktop.mean()


def test_wakeup_measurement_cc6():
    profile = PROCESSOR_PROFILES["E5-2620v4"]
    samples = measure_wakeup("E5-2620v4", "CC6", n_reps=40)
    assert samples.mean() == pytest.approx(profile.cc6_wake_ns[0], rel=0.2)


def test_wakeup_measurement_cc1_is_submicrosecond():
    samples = measure_wakeup("i7-7700", "CC1", n_reps=40)
    assert samples.mean() < 1 * US


def test_wakeup_samples_nonnegative():
    samples = measure_wakeup("Gold-6134", "CC1", n_reps=60)
    assert (samples >= 0).all()


def test_retransition_measurement_is_deterministic_per_seed():
    a = measure_retransition("i7-6700", 0, 1, n_reps=20, seed=5)
    b = measure_retransition("i7-6700", 0, 1, n_reps=20, seed=5)
    assert np.array_equal(a, b)
