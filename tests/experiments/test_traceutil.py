"""Trace helpers used by the figure harnesses."""

import numpy as np
import pytest

from repro.experiments.traceutil import (boost_delays_ms,
                                         ksoftirqd_wake_times, mode_series,
                                         pstate_series)
from repro.sim.trace import TraceRecorder
from repro.units import MS


class FakeResult:
    def __init__(self, duration_ns):
        self.trace = TraceRecorder()
        self.duration_ns = duration_ns


def test_mode_series_bins_packets():
    result = FakeResult(3 * MS)
    result.trace.record("core0.pkts_interrupt", 100, 5)
    result.trace.record("core0.pkts_polling", 1_500_000, 7)
    out = mode_series(result, 0)
    assert out["interrupt"].tolist() == [5, 0, 0]
    assert out["polling"].tolist() == [0, 7, 0]


def test_pstate_series_carries_forward():
    result = FakeResult(3 * MS)
    result.trace.record("core0.pstate", 500_000, 8)
    values = pstate_series(result, 0)
    assert values.tolist() == [8.0, 8.0, 8.0]


def test_pstate_series_initially_p0():
    result = FakeResult(2 * MS)
    assert pstate_series(result, 0).tolist() == [0.0, 0.0]


def test_ksoftirqd_wake_times():
    result = FakeResult(2 * MS)
    result.trace.record("core0.ksoftirqd_wake", 42)
    assert ksoftirqd_wake_times(result, 0).tolist() == [42]


def test_boost_delay_measured_per_period():
    result = FakeResult(300 * MS)
    # Period 100 ms; P0 reached 2 ms into period 1, never in period 2.
    result.trace.record("core0.pstate", 5 * MS, 10)
    result.trace.record("core0.pstate", 102 * MS, 0)
    result.trace.record("core0.pstate", 130 * MS, 10)
    delays = boost_delays_ms(result, 0, 100 * MS)
    assert delays == [2.0, None]
