"""EventQueue ordering, cancellation, and FIFO tie-breaking."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.event import EventQueue


def drain(queue):
    out = []
    while True:
        ev = queue.pop()
        if ev is None:
            return out
        out.append(ev)


def test_pop_orders_by_time():
    q = EventQueue()
    q.push(30, lambda: None)
    q.push(10, lambda: None)
    q.push(20, lambda: None)
    assert [ev.time for ev in drain(q)] == [10, 20, 30]


def test_same_time_events_preserve_fifo_order():
    q = EventQueue()
    first = q.push(5, lambda: None)
    second = q.push(5, lambda: None)
    popped = drain(q)
    assert popped == [first, second]


def test_cancel_prevents_pop():
    q = EventQueue()
    keep = q.push(1, lambda: None)
    drop = q.push(2, lambda: None)
    q.cancel(drop)
    assert drain(q) == [keep]


def test_cancel_is_idempotent_for_len():
    q = EventQueue()
    ev = q.push(1, lambda: None)
    q.cancel(ev)
    q.cancel(ev)
    assert len(q) == 0


def test_len_counts_only_live_events():
    q = EventQueue()
    events = [q.push(i, lambda: None) for i in range(5)]
    q.cancel(events[2])
    assert len(q) == 4


def test_peek_time_skips_cancelled_head():
    q = EventQueue()
    head = q.push(1, lambda: None)
    q.push(7, lambda: None)
    q.cancel(head)
    assert q.peek_time() == 7


def test_pop_empty_returns_none():
    assert EventQueue().pop() is None
    assert EventQueue().peek_time() is None


@given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=1,
                max_size=200))
def test_pop_sequence_is_sorted(times):
    q = EventQueue()
    for t in times:
        q.push(t, lambda: None)
    popped = [ev.time for ev in drain(q)]
    assert popped == sorted(times)


@given(st.lists(st.integers(min_value=0, max_value=100), min_size=2,
                max_size=100),
       st.data())
def test_cancelled_subset_never_pops(times, data):
    q = EventQueue()
    events = [q.push(t, lambda: None) for t in times]
    to_cancel = data.draw(st.sets(
        st.integers(min_value=0, max_value=len(events) - 1)))
    for idx in to_cancel:
        q.cancel(events[idx])
    popped = set(id(ev) for ev in drain(q))
    for idx, ev in enumerate(events):
        assert (id(ev) in popped) == (idx not in to_cancel)
