"""Stress tests of the event-kernel fast path.

The run loop is inlined into :meth:`Simulator.run_until` (heap access,
cancelled-head dropping, freelist reuse), so these tests hammer exactly
the paths a slip there would corrupt: same-timestamp FIFO order through
recycled event shells, cancellation-heavy counter bookkeeping, and the
refcount guard that keeps externally-held handles out of the freelist.
"""

from repro.sim.simulator import Simulator


def test_cancellation_heavy_counters_stay_consistent():
    sim = Simulator()
    queue = sim._queue
    fired = []
    events = [sim.schedule(i % 97, fired.append, i) for i in range(2000)]
    cancelled = 0
    for i, ev in enumerate(events):
        if i % 3 == 0:
            ev.cancel()
            ev.cancel()  # idempotent
            cancelled += 1
    del events, ev
    sim.run_until(100)
    assert len(fired) == 2000 - cancelled
    assert sim.events_processed == 2000 - cancelled
    assert queue.scheduled_total == 2000
    assert queue.cancelled_total == cancelled
    # The lifetime invariant: every scheduled event either fired, was
    # cancelled, or is still live.
    assert (queue.scheduled_total
            == sim.events_processed + queue.cancelled_total + len(queue))
    assert len(queue) == 0


def test_same_timestamp_fifo_survives_recycling():
    sim = Simulator()
    queue = sim._queue
    order = []
    # Prime the freelist: cancelled events are recycled when the run loop
    # drops them off the heap (handles released first).
    victims = [sim.schedule(1, order.append, -1) for _ in range(50)]
    for ev in victims:
        ev.cancel()
    del victims, ev
    sim.run_until(2)
    assert order == []
    assert len(queue._free) > 0
    # Same-timestamp events must fire in scheduling order even when their
    # shells come out of the freelist with stale (time, seq) fields.
    for i in range(200):
        sim.schedule_at(10, order.append, i)
    assert queue.recycled_total > 0
    sim.run_until(10)
    assert order == list(range(200))


def test_run_until_matches_step_semantics():
    """The inlined fast path and the step() slow path fire identically."""
    def build(record):
        sim = Simulator()

        def chain(depth):
            record.append((sim.now, depth))
            if depth < 50:
                sim.schedule(0, chain, depth + 1)  # same-timestamp chain
                victim = sim.schedule(1, record.append, ("victim", depth))
                victim.cancel()

        sim.schedule(5, chain, 0)
        return sim

    fast, slow = [], []
    build(fast).run_until(100)
    stepped = build(slow)
    while stepped.step():
        pass
    assert fast == slow


def test_periodic_timer_stop_during_fire():
    sim = Simulator()
    ticks = []
    timers = []

    def tick():
        ticks.append(sim.now)
        if len(ticks) == 3:
            timers[0].stop()

    timers.append(sim.every(10, tick))
    sim.run_until(1000)
    assert ticks == [10, 20, 30]
    assert timers[0].stopped
    assert sim.pending_events == 0


def test_cancel_paths_share_one_implementation():
    sim = Simulator()
    queue = sim._queue
    a = sim.schedule(5, lambda: None)
    b = sim.schedule(6, lambda: None)
    assert len(queue) == 2
    a.cancel()
    assert len(queue) == 1
    queue.cancel(b)  # delegates to Event.cancel
    assert len(queue) == 0
    assert queue.cancelled_total == 2
    # Idempotent through either handle.
    a.cancel()
    queue.cancel(b)
    assert queue.cancelled_total == 2
    sim.run_until(10)
    assert sim.events_processed == 0


def test_cancel_through_stale_handle_is_harmless():
    sim = Simulator()
    fired = []
    ev = sim.schedule(1, fired.append, 1)
    sim.run_until(10)
    assert fired == [1]
    # The event already fired; a late cancel through the retained handle
    # must not disturb live accounting or any later event.
    ev.cancel()
    assert sim.pending_events == 0
    assert sim._queue.cancelled_total == 0
    sim.schedule(1, fired.append, 2)
    sim.run_until(20)
    assert fired == [1, 2]


def test_retained_handle_is_never_recycled():
    sim = Simulator()
    ev = sim.schedule(1, lambda: None)
    sim.run_until(5)
    # We still hold `ev`, so the refcount guard must have kept it out of
    # the freelist: the next push allocates a distinct object.
    ev2 = sim.schedule(1, lambda: None)
    assert ev2 is not ev
    assert sim._queue.recycled_total == 0


def test_unreferenced_fired_events_are_recycled():
    sim = Simulator()
    count = [0]

    def bump():
        count[0] += 1

    for i in range(100):
        sim.schedule(i, bump)
    sim.run_until(200)
    assert count[0] == 100
    queue = sim._queue
    assert len(queue._free) > 0
    before = queue.recycled_total
    sim.schedule(10, bump)
    assert queue.recycled_total == before + 1


def test_step_path_recycles_too():
    sim = Simulator()
    sim.schedule(1, lambda: None)
    assert sim.step()
    assert len(sim._queue._free) == 1
