"""Freelist safety: retained references vs. the recycling guards.

The production kernel recycles fired events only when
``sys.getrefcount`` proves no one else holds them. These tests pin both
halves of that contract:

* the *non-sanitized* kernel never recycles an event whose handle the
  caller retained (the refcount guard works), and
* the *sanitized* kernel detects the failure mode the guard is there to
  prevent — if a retained-event object is nevertheless recycled and
  reused (forced here through the freelist backdoor), touching the stale
  handle raises instead of silently cancelling an unrelated event.
"""

import pytest

from repro.analysis.sanitize import SanitizerError
from repro.sim.simulator import Simulator


def test_unsanitized_kernel_never_recycles_retained_event():
    sim = Simulator()
    retained = sim.schedule(5, lambda: None)
    sim.run_until(10)
    # The caller's reference kept the refcount above the guard: the
    # fired event must not be on the freelist, and must still be intact.
    assert retained not in sim._queue._free
    assert retained.fn is not None
    # An unretained event on the same path *is* recycled.
    sim.schedule_at(12, lambda: None)
    sim.run_until(20)
    assert len(sim._queue._free) == 1
    assert sim._queue._free[0] is not retained


def test_unretained_events_are_recycled_and_reused():
    sim = Simulator()
    sim.schedule(1, lambda: None)
    sim.run_until(2)
    assert len(sim._queue._free) == 1
    recycled = sim._queue._free[0]
    reused = sim.schedule(3, lambda: None)
    assert reused is recycled
    assert sim._queue._free == []


def test_sanitized_kernel_matches_production_recycling():
    """Same freelist decisions: retained survives, unretained recycles."""
    sim = Simulator(sanitize=True)
    retained = sim.schedule(5, lambda: None)
    sim.schedule(6, lambda: None)
    sim.run_until(10)
    assert len(sim._queue._free) == 1
    assert sim._queue._free[0] is not retained._ev
    assert retained.fn is not None  # handle still valid, gen unchanged
    assert retained._ev.gen == retained._gen


def test_sanitizer_flags_forced_reuse_of_retained_event():
    """If the guard *had* failed, the stale handle raises on touch."""
    sim = Simulator(sanitize=True)
    retained = sim.schedule(5, lambda: None)
    sim.run_until(10)
    ev = retained._ev
    # Force what a broken guard would do: recycle despite the handle.
    ev.fn = None
    ev.args = ()
    sim._queue._free.append(ev)
    reused = sim.schedule(12, lambda: None)
    assert reused._ev is ev and ev.gen == retained._gen + 1
    with pytest.raises(SanitizerError, match="use-after-free"):
        retained.cancel()
    # The *new* incarnation's handle works fine.
    reused.cancel()
    assert reused.cancelled


def test_generation_counter_survives_many_reuses():
    sim = Simulator(sanitize=True)
    generations = set()
    for _ in range(50):
        sim.schedule(1, lambda: None)
        sim.run_until(sim.now + 1)
        free = sim._queue._free
        if free:
            generations.add(free[-1].gen)
    assert max(generations) >= 2  # the same object cycled repeatedly
