"""Property fuzz: the sanitized event kernel is event-for-event identical.

Hypothesis drives random interleavings of schedule / cancel / run_until
(including callback-spawned events and cancels through retained,
possibly already-fired handles) through a plain Simulator and a
sanitized one. The sanitizer's shadows must never change *what* fires
*when* — only whether invariant violations raise. ``derandomize=True``
keeps CI runs reproducible: failures shrink to a deterministic program.
"""

from hypothesis import given, settings, strategies as st

from repro.sim.simulator import Simulator

_OP = st.one_of(
    st.tuples(st.just("schedule"),
              st.integers(min_value=0, max_value=500),   # delay
              st.integers(min_value=0, max_value=9),     # tag
              st.integers(min_value=0, max_value=50)),   # child delay
    st.tuples(st.just("schedule_at_now"),
              st.integers(min_value=0, max_value=9)),
    st.tuples(st.just("cancel"),
              st.integers(min_value=0, max_value=10_000)),
    st.tuples(st.just("run"),
              st.integers(min_value=0, max_value=300)),
)

_PROGRAM = st.lists(_OP, max_size=60)


def _execute(sim, ops):
    log = []
    handles = []

    def fire(tag, child_delay):
        log.append((sim.now, tag))
        if child_delay:
            # Events scheduled from inside a firing callback exercise
            # the inlined run loop's mid-flight heap pushes.
            handles.append(sim.schedule(child_delay, fire,
                                        tag * 31 % 10, 0))

    horizon = 0
    for op in ops:
        kind = op[0]
        if kind == "schedule":
            _, delay, tag, child_delay = op
            handles.append(sim.schedule(delay, fire, tag, child_delay))
        elif kind == "schedule_at_now":
            handles.append(sim.schedule_at(sim.now, fire, op[1], 0))
        elif kind == "cancel":
            if handles:
                # Any retained handle is fair game — pending, fired,
                # or already cancelled (both must be no-ops).
                sim.cancel(handles[op[1] % len(handles)])
        else:  # run
            horizon += op[1]
            sim.run_until(horizon)
    sim.run_until(horizon + 10_000)  # drain everything still pending
    return log, sim.events_processed, sim.pending_events


@settings(max_examples=120, deadline=None, derandomize=True)
@given(_PROGRAM)
def test_sanitized_kernel_matches_unsanitized(ops):
    base = _execute(Simulator(sanitize=False), ops)
    checked = _execute(Simulator(sanitize=True), ops)
    assert base == checked


@settings(max_examples=60, deadline=None, derandomize=True)
@given(_PROGRAM)
def test_queue_lifetime_invariant_holds_under_fuzz(ops):
    sim = Simulator(sanitize=False)
    _execute(sim, ops)
    queue = sim._queue
    assert (queue.scheduled_total
            == sim.events_processed + queue.cancelled_total + len(queue))
