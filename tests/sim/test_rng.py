"""Random streams: determinism and independence."""

from repro.sim.rng import RandomStreams


def test_same_seed_same_stream():
    a = RandomStreams(7).stream("client")
    b = RandomStreams(7).stream("client")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_names_differ():
    streams = RandomStreams(7)
    a = streams.stream("client")
    b = streams.stream("core0")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_different_seeds_differ():
    a = RandomStreams(1).stream("x")
    b = RandomStreams(2).stream("x")
    assert a.random() != b.random()


def test_stream_is_cached():
    streams = RandomStreams(7)
    assert streams.stream("x") is streams.stream("x")


def test_numpy_stream_deterministic():
    a = RandomStreams(7).numpy_stream("load")
    b = RandomStreams(7).numpy_stream("load")
    assert (a.random(8) == b.random(8)).all()


def test_spawn_is_independent_of_parent():
    parent = RandomStreams(7)
    child = parent.spawn("worker")
    assert parent.stream("x").random() != child.stream("x").random()
