"""Trace recorder behaviour."""

import numpy as np

from repro.sim.trace import TraceRecorder


def test_record_and_read_back():
    tr = TraceRecorder()
    tr.record("pstate", 10, 3)
    tr.record("pstate", 20, 0)
    assert tr.samples("pstate") == [(10, 3), (20, 0)]
    assert tr.times("pstate").tolist() == [10, 20]
    assert tr.values("pstate").tolist() == [3.0, 0.0]


def test_disabled_recorder_drops_samples():
    tr = TraceRecorder(enabled=False)
    tr.record("x", 1)
    assert tr.samples("x") == []
    assert "x" not in tr


def test_unknown_channel_is_empty():
    tr = TraceRecorder()
    assert tr.samples("nope") == []
    assert tr.times("nope").size == 0


def test_clear():
    tr = TraceRecorder()
    tr.record("a", 1, 1)
    tr.clear()
    assert list(tr.channels()) == []


def test_default_value_is_one():
    tr = TraceRecorder()
    tr.record("wake", 5)
    assert tr.values("wake").tolist() == [1.0]


def test_disabled_swaps_record_method():
    """The off switch is a bound-method swap, not a per-call branch."""
    tr = TraceRecorder(enabled=False)
    assert tr.record.__func__ is TraceRecorder._record_disabled
    tr.enabled = True
    assert "record" not in tr.__dict__  # class method shines through
    tr.record("x", 1)
    assert tr.samples("x") == [(1, 1)]
    tr.enabled = False
    tr.record("x", 2)
    assert tr.samples("x") == [(1, 1)]


def test_to_arrays_returns_typed_pair():
    tr = TraceRecorder()
    tr.record("c", 10, 2)
    tr.record("c", 20, 5)
    times, values = tr.to_arrays("c")
    assert times.dtype == np.int64 and values.dtype == float
    assert times.tolist() == [10, 20]
    assert values.tolist() == [2.0, 5.0]


def test_to_arrays_memoizes_and_invalidates_on_append():
    tr = TraceRecorder()
    tr.record("c", 1, 1)
    first = tr.to_arrays("c")
    assert tr.to_arrays("c")[0] is first[0]  # cached
    tr.record("c", 2, 1)
    times, _ = tr.to_arrays("c")
    assert times.tolist() == [1, 2]  # cache refreshed by length change


def test_recorder_pickles_without_derived_state():
    import pickle
    tr = TraceRecorder(enabled=False)
    tr.enabled = True
    tr.record("c", 7, 3)
    tr.to_arrays("c")  # populate the memo
    clone = pickle.loads(pickle.dumps(tr))
    assert clone.enabled is True
    assert clone.samples("c") == [(7, 3)]
    assert clone.to_arrays("c")[0].tolist() == [7]
    off = pickle.loads(pickle.dumps(TraceRecorder(enabled=False)))
    assert off.enabled is False
    off.record("x", 1)
    assert off.samples("x") == []
