"""Trace recorder behaviour."""

import numpy as np

from repro.sim.trace import TraceRecorder


def test_record_and_read_back():
    tr = TraceRecorder()
    tr.record("pstate", 10, 3)
    tr.record("pstate", 20, 0)
    assert tr.samples("pstate") == [(10, 3), (20, 0)]
    assert tr.times("pstate").tolist() == [10, 20]
    assert tr.values("pstate").tolist() == [3.0, 0.0]


def test_disabled_recorder_drops_samples():
    tr = TraceRecorder(enabled=False)
    tr.record("x", 1)
    assert tr.samples("x") == []
    assert "x" not in tr


def test_unknown_channel_is_empty():
    tr = TraceRecorder()
    assert tr.samples("nope") == []
    assert tr.times("nope").size == 0


def test_clear():
    tr = TraceRecorder()
    tr.record("a", 1, 1)
    tr.clear()
    assert list(tr.channels()) == []


def test_default_value_is_one():
    tr = TraceRecorder()
    tr.record("wake", 5)
    assert tr.values("wake").tolist() == [1.0]
