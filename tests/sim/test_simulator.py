"""Simulator loop: scheduling, time advance, periodic timers."""

import pytest

from repro.sim.simulator import Simulator


def test_schedule_and_run_until_advances_clock(sim):
    fired = []
    sim.schedule(100, fired.append, 1)
    sim.run_until(50)
    assert fired == [] and sim.now == 50
    sim.run_until(150)
    assert fired == [1] and sim.now == 150


def test_events_fire_in_time_order(sim):
    order = []
    sim.schedule(30, order.append, "c")
    sim.schedule(10, order.append, "a")
    sim.schedule(20, order.append, "b")
    sim.run_until(100)
    assert order == ["a", "b", "c"]


def test_negative_delay_rejected(sim):
    with pytest.raises(ValueError):
        sim.schedule(-1, lambda: None)


def test_schedule_at_in_past_rejected(sim):
    sim.run_until(100)
    with pytest.raises(ValueError):
        sim.schedule_at(50, lambda: None)


def test_cancelled_event_does_not_fire(sim):
    fired = []
    ev = sim.schedule(10, fired.append, 1)
    sim.cancel(ev)
    sim.run_until(100)
    assert fired == []


def test_callback_may_schedule_more_events(sim):
    seen = []

    def chain(n):
        seen.append(n)
        if n < 3:
            sim.schedule(10, chain, n + 1)

    sim.schedule(0, chain, 0)
    sim.run_until(1000)
    assert seen == [0, 1, 2, 3]


def test_run_executes_until_drained(sim):
    fired = []
    sim.schedule(5, fired.append, 1)
    sim.schedule(15, fired.append, 2)
    sim.run()
    assert fired == [1, 2]
    assert sim.pending_events == 0


def test_events_processed_counter(sim):
    for i in range(4):
        sim.schedule(i, lambda: None)
    sim.run_until(10)
    assert sim.events_processed == 4


def test_periodic_timer_fires_every_period(sim):
    ticks = []
    sim.every(10, lambda: ticks.append(sim.now))
    sim.run_until(45)
    assert ticks == [10, 20, 30, 40]


def test_periodic_timer_stop(sim):
    ticks = []
    timer = sim.every(10, lambda: ticks.append(sim.now))
    sim.run_until(25)
    timer.stop()
    sim.run_until(100)
    assert ticks == [10, 20]
    assert timer.stopped


def test_periodic_timer_custom_start_delay(sim):
    ticks = []
    sim.every(10, lambda: ticks.append(sim.now), start_delay=3)
    sim.run_until(25)
    assert ticks == [3, 13, 23]


def test_periodic_timer_rejects_nonpositive_period(sim):
    with pytest.raises(ValueError):
        sim.every(0, lambda: None)
