"""Property-based tests of the core execution engine's invariants."""

from hypothesis import given, settings, strategies as st

from repro.cpu.core import (PRIORITY_HARDIRQ, PRIORITY_SOFTIRQ,
                            PRIORITY_TASK, Core, Work)
from repro.cpu.pstate import PStateTable
from repro.sim.simulator import Simulator
from repro.units import GHZ, MS, S

work_strategy = st.tuples(
    st.floats(min_value=1, max_value=500_000),          # cycles
    st.sampled_from([PRIORITY_HARDIRQ, PRIORITY_SOFTIRQ, PRIORITY_TASK]),
    st.integers(min_value=0, max_value=2_000_000))      # submit time (ns)


def build_core():
    sim = Simulator()
    table = PStateTable.linear(1.2 * GHZ, 3.2 * GHZ, 16)
    core = Core(sim, 0, table)
    core.idle_reselect_period_ns = 0
    core.idle_entry_delay_ns = 0
    return sim, core


@settings(max_examples=40, deadline=None)
@given(st.lists(work_strategy, min_size=1, max_size=25))
def test_no_work_is_ever_lost(specs):
    sim, core = build_core()
    completed = []
    for cycles, priority, t in specs:
        sim.schedule_at(t, lambda c=cycles, p=priority: core.submit(
            Work(c, p, on_complete=lambda w: completed.append(w))))
    sim.run_until(1 * S)
    assert len(completed) == len(specs)
    assert core.is_idle
    assert all(w.cycles_remaining == 0 for w in completed)


@settings(max_examples=40, deadline=None)
@given(st.lists(work_strategy, min_size=1, max_size=25),
       st.integers(min_value=0, max_value=15))
def test_busy_time_equals_total_cycles_over_frequency(specs, pstate):
    sim, core = build_core()
    core.set_pstate_index(pstate)
    for cycles, priority, t in specs:
        sim.schedule_at(t, lambda c=cycles, p=priority: core.submit(
            Work(c, p)))
    sim.run_until(1 * S)
    core.finalize()
    total_cycles = sum(c for c, _, _ in specs)
    expected_busy = total_cycles / core.frequency_hz * S
    # Each work's duration rounds to whole ns (<= 1 ns error per work).
    assert abs(core.busy_ns - expected_busy) <= len(specs) + 1


@settings(max_examples=40, deadline=None)
@given(st.lists(work_strategy, min_size=1, max_size=25))
def test_busy_plus_idle_equals_elapsed(specs):
    sim, core = build_core()
    for cycles, priority, t in specs:
        sim.schedule_at(t, lambda c=cycles, p=priority: core.submit(
            Work(c, p)))
    sim.run_until(100 * MS)
    core.finalize()
    assert core.busy_ns + core.idle_ns == sim.now


@settings(max_examples=30, deadline=None)
@given(st.lists(work_strategy, min_size=2, max_size=20),
       st.lists(st.tuples(st.integers(min_value=0, max_value=2_500_000),
                          st.integers(min_value=0, max_value=15)),
                min_size=1, max_size=8))
def test_work_survives_random_frequency_changes(specs, freq_changes):
    sim, core = build_core()
    completed = []
    for cycles, priority, t in specs:
        sim.schedule_at(t, lambda c=cycles, p=priority: core.submit(
            Work(c, p, on_complete=lambda w: completed.append(w))))
    for t, idx in freq_changes:
        sim.schedule_at(t, core.set_pstate_index, idx)
    sim.run_until(1 * S)
    assert len(completed) == len(specs)
    assert core.is_idle
