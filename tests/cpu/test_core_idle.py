"""Core idle behaviour: C-state entry, wake latency, cache penalty."""

import pytest

from repro.cpu.core import PRIORITY_TASK, Work
from repro.governors.cpuidle import C6OnlyIdleGovernor, DisableIdleGovernor
from repro.units import MS, US


def settle_idle(sim, core):
    """Run a trivial work then let the core go idle."""
    core.submit(Work(1200, PRIORITY_TASK))
    sim.run_until(sim.now + 1 * MS)


def test_idle_governor_selects_cstate(sim, make_core):
    core = make_core()
    core.idle_governor = C6OnlyIdleGovernor()
    settle_idle(sim, core)
    assert core.cstate.name == "CC6"


def test_disable_governor_stays_cc0(sim, make_core):
    core = make_core()
    core.idle_governor = DisableIdleGovernor()
    settle_idle(sim, core)
    assert core.cstate.name == "CC0"


def test_wake_from_cc6_pays_exit_latency(sim, make_core):
    core = make_core(cache_penalty_fraction=0.0)
    core.idle_governor = C6OnlyIdleGovernor()
    settle_idle(sim, core)
    t0 = sim.now
    done = []
    core.submit(Work(0, PRIORITY_TASK, on_complete=lambda w: done.append(sim.now)))
    sim.run_until(sim.now + 1 * MS)
    latency = done[0] - t0
    assert latency == core.cstates.by_name("CC6").exit_latency_ns


def test_cc6_wake_includes_cache_penalty(sim, make_core):
    core = make_core(cache_penalty_fraction=1.0)
    core.idle_governor = C6OnlyIdleGovernor()
    settle_idle(sim, core)
    t0 = sim.now
    done = []
    core.submit(Work(0, PRIORITY_TASK, on_complete=lambda w: done.append(sim.now)))
    sim.run_until(sim.now + 1 * MS)
    expected = (core.cstates.by_name("CC6").exit_latency_ns
                + core.cstates.cache_refill_penalty_ns)
    assert done[0] - t0 == expected


def test_wake_from_cc0_idle_is_instant(sim, make_core):
    core = make_core()
    settle_idle(sim, core)
    t0 = sim.now
    done = []
    core.submit(Work(0, PRIORITY_TASK, on_complete=lambda w: done.append(sim.now)))
    sim.run_until(sim.now + 1 * MS)
    assert done[0] == t0


def test_idle_entry_delay_defers_deep_state(sim, make_core):
    core = make_core()
    core.idle_entry_delay_ns = 10 * US
    core.idle_governor = C6OnlyIdleGovernor()
    core.submit(Work(1200, PRIORITY_TASK))
    sim.run_until(sim.now + 2 * US)
    assert core.cstate.name == "CC0"  # still dwelling
    sim.run_until(sim.now + 20 * US)
    assert core.cstate.name == "CC6"


def test_micro_idle_never_reaches_deep_state(sim, make_core):
    core = make_core()
    core.idle_entry_delay_ns = 10 * US
    core.idle_governor = C6OnlyIdleGovernor()
    entered = []
    orig = core._enter_cstate

    def spy(cstate):
        entered.append(cstate.name)
        orig(cstate)

    core._enter_cstate = spy
    # Busy, then idle 2µs, then busy again: the 10µs dwell never elapses.
    core.submit(Work(1200, PRIORITY_TASK))
    sim.run_until(sim.now + 3 * US)
    core.submit(Work(1200, PRIORITY_TASK))
    sim.run_until(sim.now + 1 * MS)
    assert "CC6" in entered  # the final long idle does deepen
    # But no CC6 entry happened before the second work ran.
    assert entered[0] == "CC0"


def test_cstate_residency_accounting(sim, make_core):
    core = make_core()
    core.idle_governor = C6OnlyIdleGovernor()
    settle_idle(sim, core)
    core.finalize()
    assert core.cstate_residency_ns["CC6"] > 0
    total = sum(core.cstate_residency_ns.values())
    assert total == sim.now


def test_idle_end_notifies_governor(sim, make_core):
    seen = []

    class Recorder(C6OnlyIdleGovernor):
        def on_idle_end(self, core, idle_duration_ns):
            seen.append(idle_duration_ns)

    core = make_core()
    core.idle_governor = Recorder()
    settle_idle(sim, core)
    core.submit(Work(1200, PRIORITY_TASK))
    sim.run_until(sim.now + 1 * MS)
    assert len(seen) >= 1
    # The construction-time idle ends with duration 0; real ones are >0.
    assert any(d > 0 for d in seen)
