"""DVFS controller and the re-transition latency model."""

import pytest

from repro.cpu.dvfs import (DvfsController, FULL_DOWN, FULL_UP,
                            SMALL_DOWN_HIGH, SMALL_DOWN_LOW, SMALL_UP_HIGH,
                            SMALL_UP_LOW, TransitionLatencyModel)
from repro.cpu.profiles import XEON_GOLD_6134
from repro.units import MS, US


@pytest.fixture
def model():
    return XEON_GOLD_6134.transition_model()


@pytest.fixture
def ctrl(sim, core, model):
    return DvfsController(sim, core, model)


def test_settled_transition_uses_base_latency(sim, core, ctrl):
    latency = ctrl.request(5)
    assert latency == ctrl.model.base_latency_ns
    assert core.pstate_index == 0  # not yet applied
    sim.run_until(latency + 1)
    assert core.pstate_index == 5


def test_duplicate_request_is_noop(sim, core, ctrl):
    ctrl.request(5)
    assert ctrl.request(5) is None
    assert ctrl.transitions == 1


def test_request_during_settle_costs_retransition(sim, core, ctrl):
    ctrl.request(5)               # base latency, settling
    latency = ctrl.request(0)     # lands inside the settle window
    assert latency > 100 * US     # Xeon: ~526 µs
    assert ctrl.retransitions == 1
    sim.run_until(2 * MS)
    assert core.pstate_index == 0  # last writer wins


def test_superseded_request_never_applies(sim, core, ctrl):
    ctrl.request(5)
    ctrl.request(9)
    sim.run_until(5 * MS)
    assert core.pstate_index == 9


def test_settled_after_wait_is_base_again(sim, core, ctrl):
    ctrl.request(5)
    sim.run_until(5 * MS)  # fully settled
    latency = ctrl.request(0)
    assert latency == ctrl.model.base_latency_ns


def test_in_flight_flag(sim, core, ctrl):
    assert not ctrl.in_flight
    ctrl.request(3)
    assert ctrl.in_flight
    sim.run_until(1 * MS)
    assert not ctrl.in_flight


def test_model_requires_all_categories():
    with pytest.raises(ValueError):
        TransitionLatencyModel(n_states=16, retransition_ns={})


def test_model_interpolates_between_small_and_full():
    table = {
        SMALL_DOWN_HIGH: (100.0, 1.0), SMALL_UP_HIGH: (200.0, 1.0),
        FULL_DOWN: (1000.0, 1.0), FULL_UP: (2000.0, 1.0),
        SMALL_DOWN_LOW: (100.0, 1.0), SMALL_UP_LOW: (200.0, 1.0),
    }
    model = TransitionLatencyModel(n_states=16, retransition_ns=table)
    small_up = model.mean_latency_ns(1, 0, retransition=True)
    full_up = model.mean_latency_ns(15, 0, retransition=True)
    mid_up = model.mean_latency_ns(8, 0, retransition=True)
    assert small_up == pytest.approx(200.0)
    assert full_up == pytest.approx(2000.0)
    assert small_up < mid_up < full_up


def test_model_direction_matters():
    table = {
        SMALL_DOWN_HIGH: (100.0, 1.0), SMALL_UP_HIGH: (900.0, 1.0),
        FULL_DOWN: (100.0, 1.0), FULL_UP: (900.0, 1.0),
        SMALL_DOWN_LOW: (100.0, 1.0), SMALL_UP_LOW: (900.0, 1.0),
    }
    model = TransitionLatencyModel(n_states=16, retransition_ns=table)
    assert model.mean_latency_ns(0, 15, True) == pytest.approx(100.0)
    assert model.mean_latency_ns(15, 0, True) == pytest.approx(900.0)


def test_non_retransition_mean_is_base(model):
    assert model.mean_latency_ns(0, 15, retransition=False) \
        == model.base_latency_ns


def test_sample_latency_floor(model, rng):
    stream = rng.stream("dvfs")
    for _ in range(100):
        assert model.sample_latency_ns(0, 1, True, stream) >= 1 * US


def test_mismatched_table_size_rejected(sim, core):
    small = TransitionLatencyModel(
        n_states=4,
        retransition_ns={c: (100.0, 1.0) for c in (
            SMALL_DOWN_HIGH, SMALL_UP_HIGH, FULL_DOWN, FULL_UP,
            SMALL_DOWN_LOW, SMALL_UP_LOW)})
    with pytest.raises(ValueError):
        DvfsController(sim, core, small)
