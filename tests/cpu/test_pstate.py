"""P-state table invariants."""

import pytest
from hypothesis import given, strategies as st

from repro.cpu.pstate import PState, PStateTable
from repro.units import GHZ


def test_linear_table_endpoints(pstates):
    assert pstates.p0.freq_hz == pytest.approx(3.2 * GHZ)
    assert pstates.pmin.freq_hz == pytest.approx(1.2 * GHZ)
    assert len(pstates) == 16
    assert pstates.max_index == 15


def test_frequencies_strictly_decreasing(pstates):
    freqs = [st.freq_hz for st in pstates]
    assert freqs == sorted(freqs, reverse=True)
    assert len(set(freqs)) == len(freqs)


def test_voltage_decreases_with_index(pstates):
    volts = [st.voltage for st in pstates]
    assert volts == sorted(volts, reverse=True)


def test_clamp(pstates):
    assert pstates.clamp(-3) == 0
    assert pstates.clamp(99) == 15
    assert pstates.clamp(7) == 7


def test_index_for_frequency_picks_slowest_sufficient(pstates):
    # Exactly Pmin's frequency -> Pmin.
    assert pstates.index_for_frequency(1.2 * GHZ) == 15
    # Slightly above Pmin -> one state faster.
    assert pstates.index_for_frequency(1.21 * GHZ) == 14
    # Anything above P0 -> P0.
    assert pstates.index_for_frequency(9 * GHZ) == 0


def test_invalid_tables_rejected():
    with pytest.raises(ValueError):
        PStateTable([])
    with pytest.raises(ValueError):
        PStateTable.linear(2 * GHZ, 1 * GHZ, 4)
    with pytest.raises(ValueError):
        PStateTable.linear(1 * GHZ, 2 * GHZ, 1)
    with pytest.raises(ValueError):
        PStateTable([PState(1, 2 * GHZ, 1.0)])  # index mismatch


def test_pstate_validation():
    with pytest.raises(ValueError):
        PState(0, -1, 1.0)
    with pytest.raises(ValueError):
        PState(0, 1 * GHZ, 0)


@given(st.floats(min_value=0.1e9, max_value=5e9))
def test_index_for_frequency_satisfies_request_when_possible(freq):
    table = PStateTable.linear(1.2 * GHZ, 3.2 * GHZ, 16)
    idx = table.index_for_frequency(freq)
    if freq <= table.p0.freq_hz:
        assert table.freq_of(idx) >= freq - 1e-6
    else:
        assert idx == 0
    if idx < table.max_index:
        # The next slower state would not satisfy the request.
        assert table.freq_of(idx + 1) < freq or idx == 0
