"""Power model and energy meters."""

import pytest

from repro.cpu.cstate import CStateTable
from repro.cpu.power import EnergyMeter, PackageEnergy, PowerModel
from repro.cpu.pstate import PStateTable
from repro.units import GHZ, S


@pytest.fixture
def model(pstates):
    return PowerModel(pstates)


@pytest.fixture
def cstates():
    return CStateTable.default()


def test_active_power_decreases_with_pstate_index(model, pstates, cstates):
    cc0 = cstates.cc0
    powers = [model.core_power(True, pstates[i], cc0)
              for i in range(len(pstates))]
    assert powers == sorted(powers, reverse=True)


def test_active_exceeds_idle_at_same_pstate(model, pstates, cstates):
    p0 = pstates.p0
    assert model.core_power(True, p0, cstates.cc0) \
        > model.core_power(False, p0, cstates.cc0)


def test_idle_c0_exceeds_cc1_exceeds_cc6(model, pstates, cstates):
    p0 = pstates.p0
    idle_c0 = model.core_power(False, p0, cstates.cc0)
    cc1 = model.core_power(False, p0, cstates[1])
    cc6 = model.core_power(False, p0, cstates[2])
    assert idle_c0 > cc1 > cc6


def test_cc1_power_scales_with_voltage(model, pstates, cstates):
    cc1_fast = model.core_power(False, pstates.p0, cstates[1])
    cc1_slow = model.core_power(False, pstates.pmin, cstates[1])
    assert cc1_slow < cc1_fast
    expected = cc1_fast * (pstates.pmin.voltage / pstates.p0.voltage) ** 2
    assert cc1_slow == pytest.approx(expected)


def test_cc6_power_is_voltage_independent(model, pstates, cstates):
    assert model.core_power(False, pstates.p0, cstates[2]) \
        == model.core_power(False, pstates.pmin, cstates[2])


def test_uncore_power_follows_fastest_pstate(model, pstates):
    assert model.uncore_power(pstates.p0) == pytest.approx(
        model.uncore_max_power_w)
    slow = model.uncore_power(pstates.pmin)
    assert model.uncore_min_power_w < slow < model.uncore_max_power_w


def test_energy_meter_integrates_piecewise_constant():
    meter = EnergyMeter()
    meter.set_power(0, 10.0)
    meter.set_power(S, 2.0)          # 10 W for 1 s
    assert meter.energy_j(2 * S) == pytest.approx(10.0 + 2.0)


def test_energy_meter_rejects_time_reversal():
    meter = EnergyMeter()
    meter.set_power(100, 5.0)
    with pytest.raises(ValueError):
        meter.accrue(50)


def test_package_energy_totals_cores_and_uncore(pstates):
    model = PowerModel(pstates)
    package = PackageEnergy(model)
    meter = package.meter_for(0)
    meter.set_power(0, 4.0)
    total = package.total_energy_j(S)
    assert total == pytest.approx(4.0 + model.uncore_power(pstates.p0))
    assert package.cores_energy_j(S) == pytest.approx(4.0)


def test_package_uncore_rescaling(pstates):
    model = PowerModel(pstates)
    package = PackageEnergy(model)
    package.set_uncore_pstate(0, pstates.pmin)
    energy = package.total_energy_j(S)
    assert energy == pytest.approx(model.uncore_power(pstates.pmin))
