"""Core execution engine: durations, preemption, frequency changes, idle."""

import pytest

from repro.cpu.core import (PRIORITY_HARDIRQ, PRIORITY_SOFTIRQ,
                            PRIORITY_TASK, Work)
from repro.units import GHZ, MS, US


def run_work(sim, core, cycles, priority=PRIORITY_TASK):
    done = []
    core.submit(Work(cycles, priority,
                     on_complete=lambda w: done.append(sim.now)))
    return done


def test_work_duration_matches_frequency(sim, core):
    # 3200 cycles at 3.2 GHz (P0) = 1 µs.
    done = run_work(sim, core, 3200)
    sim.run_until(1 * MS)
    assert done == [1 * US]


def test_work_slower_at_pmin(sim, core):
    core.set_pstate_index(15)  # 1.2 GHz
    done = run_work(sim, core, 1200)
    sim.run_until(1 * MS)
    assert done == [1 * US]


def test_sequential_works_fifo(sim, core):
    order = []
    core.submit(Work(3200, PRIORITY_TASK,
                     on_complete=lambda w: order.append("a")))
    core.submit(Work(3200, PRIORITY_TASK,
                     on_complete=lambda w: order.append("b")))
    sim.run_until(1 * MS)
    assert order == ["a", "b"]
    assert core.works_completed == 2


def test_higher_priority_preempts(sim, core):
    order = []
    core.submit(Work(32000, PRIORITY_TASK,
                     on_complete=lambda w: order.append(("task", sim.now))))
    sim.run_until(2 * US)  # task is mid-flight
    core.submit(Work(3200, PRIORITY_SOFTIRQ,
                     on_complete=lambda w: order.append(("irq", sim.now))))
    sim.run_until(1 * MS)
    # softirq finishes first; the task resumes and completes 1µs later
    # than it would have (its remaining cycles are preserved exactly).
    assert order[0][0] == "irq"
    assert order[1] == ("task", 11 * US)


def test_equal_priority_does_not_preempt(sim, core):
    order = []
    core.submit(Work(3200, PRIORITY_SOFTIRQ,
                     on_complete=lambda w: order.append("first")))
    core.submit(Work(3200, PRIORITY_SOFTIRQ,
                     on_complete=lambda w: order.append("second")))
    sim.run_until(1 * MS)
    assert order == ["first", "second"]


def test_hardirq_preempts_softirq(sim, core):
    order = []
    core.submit(Work(32000, PRIORITY_SOFTIRQ,
                     on_complete=lambda w: order.append("softirq")))
    sim.run_until(1 * US)
    core.submit(Work(3200, PRIORITY_HARDIRQ,
                     on_complete=lambda w: order.append("hardirq")))
    sim.run_until(1 * MS)
    assert order == ["hardirq", "softirq"]


def test_frequency_change_rescales_in_flight_work(sim, core):
    done = run_work(sim, core, 6400)  # 2 µs at P0
    sim.run_until(1 * US)             # half done (3200 cycles left)
    core.set_pstate_index(15)         # 1.2 GHz
    sim.run_until(1 * MS)
    # Remaining 3200 cycles at 1.2 GHz = 2.667 µs -> completes at ~3.67 µs.
    assert done[0] == pytest.approx(1 * US + 3200 / 1.2, abs=2)


def test_pause_running_work_preserves_remaining_cycles(sim, core):
    work = Work(6400, PRIORITY_TASK)
    core.submit(work)
    sim.run_until(1 * US)
    assert core.pause(work)
    assert work.cycles_remaining == pytest.approx(3200, abs=5)
    assert core.current_work is None


def test_pause_queued_work(sim, core):
    first = Work(3200, PRIORITY_TASK)
    queued = Work(3200, PRIORITY_TASK)
    core.submit(first)
    core.submit(queued)
    assert core.pause(queued)
    assert core.pending_count() == 0


def test_pause_unknown_work_returns_false(sim, core):
    assert not core.pause(Work(100, PRIORITY_TASK))


def test_idle_accounting(sim, core):
    run_work(sim, core, 3200)
    sim.run_until(10 * US)
    core.finalize()
    assert core.busy_ns == 1 * US
    assert core.idle_ns == 9 * US


def test_c0_residency_includes_busy_and_c0_idle(sim, core):
    run_work(sim, core, 3200)
    sim.run_until(10 * US)
    core.finalize()
    # No idle governor: idles in CC0, so everything is C0 residency.
    assert core.c0_residency_ns == 10 * US


def test_is_idle(sim, core):
    assert core.is_idle
    core.submit(Work(3200, PRIORITY_TASK))
    assert not core.is_idle
    sim.run_until(1 * MS)
    assert core.is_idle


def test_work_validation():
    with pytest.raises(ValueError):
        Work(-1, PRIORITY_TASK)
    with pytest.raises(ValueError):
        Work(100, 7)


def test_pstate_listener_fires_on_change(sim, core):
    changes = []
    core.pstate_listeners.append(lambda c: changes.append(c.pstate_index))
    core.set_pstate_index(5)
    core.set_pstate_index(5)  # no-op
    core.set_pstate_index(0)
    assert changes == [5, 0]
