"""Processor profiles (Tables 1 & 2 parameterization)."""

import pytest

from repro.cpu.dvfs import FULL_UP, SMALL_DOWN_HIGH
from repro.cpu.profiles import (PROCESSOR_PROFILES, XEON_GOLD_6134)
from repro.units import GHZ, US


def test_all_four_processors_present():
    assert set(PROCESSOR_PROFILES) == {"i7-6700", "i7-7700", "E5-2620v4",
                                       "Gold-6134"}


def test_gold_6134_matches_testbed():
    p = XEON_GOLD_6134
    assert p.n_cores == 8
    assert p.n_pstates == 16
    table = p.pstate_table()
    assert table.p0.freq_hz == pytest.approx(3.2 * GHZ)
    assert table.pmin.freq_hz == pytest.approx(1.2 * GHZ)


def test_table1_values_desktop_vs_server():
    desktop = PROCESSOR_PROFILES["i7-6700"]
    server = PROCESSOR_PROFILES["Gold-6134"]
    d_mean = desktop.retransition_ns[SMALL_DOWN_HIGH][0]
    s_mean = server.retransition_ns[SMALL_DOWN_HIGH][0]
    assert 20 * US < d_mean < 60 * US
    assert s_mean > 400 * US


def test_table2_wake_values():
    for profile in PROCESSOR_PROFILES.values():
        cc6_mean, _ = profile.cc6_wake_ns
        cc1_mean, _ = profile.cc1_wake_ns
        assert 25 * US < cc6_mean < 30 * US
        assert cc1_mean < 1 * US


def test_profile_builds_consistent_models():
    for profile in PROCESSOR_PROFILES.values():
        table = profile.pstate_table()
        model = profile.transition_model()
        assert model.n_states == len(table)
        cstates = profile.cstate_table()
        assert cstates.by_name("CC6").exit_latency_ns == \
            int(profile.cc6_wake_ns[0])


def test_cache_refill_penalty_tracks_l2_size():
    # Gold 6134 (1MB L2) flushes cost more than E5-2620v4 (256KB L2).
    assert PROCESSOR_PROFILES["Gold-6134"].cache_refill_penalty_ns \
        > PROCESSOR_PROFILES["E5-2620v4"].cache_refill_penalty_ns


def test_full_up_slowest_on_desktops():
    for name in ("i7-6700", "i7-7700"):
        table = PROCESSOR_PROFILES[name].retransition_ns
        assert table[FULL_UP][0] == max(mean for mean, _ in table.values())


def test_uncore_power_params_scale_with_core_count():
    from repro.cpu.profiles import (UNCORE_MAX_W_PER_CORE,
                                    UNCORE_MIN_W_PER_CORE)
    profile = PROCESSOR_PROFILES["Gold-6134"]
    params = profile.uncore_power_params(8)
    assert params["uncore_max_power_w"] == pytest.approx(
        8 * UNCORE_MAX_W_PER_CORE)
    assert params["uncore_min_power_w"] == pytest.approx(
        8 * UNCORE_MIN_W_PER_CORE)
    # Per-core proportionality: quick 2-core runs keep the same
    # normalized envelope as the full package.
    half = profile.uncore_power_params(2)
    assert half["uncore_max_power_w"] == pytest.approx(
        params["uncore_max_power_w"] / 4)
    with pytest.raises(ValueError):
        profile.uncore_power_params(0)
