"""C-state table invariants."""

import random

import pytest

from repro.cpu.cstate import CState, CStateTable


def test_default_table_shape():
    table = CStateTable.default()
    assert [s.name for s in table] == ["CC0", "CC1", "CC6"]
    assert table.deepest.name == "CC6"
    assert table.deepest.flushes_caches
    assert table[1].voltage_scaled and not table[2].voltage_scaled


def test_exit_latency_increases_with_depth():
    table = CStateTable.default()
    latencies = [s.exit_latency_ns for s in table]
    assert latencies == sorted(latencies)


def test_deepest_within_respects_residency():
    table = CStateTable.default()
    assert table.deepest_within(0).name == "CC0"
    assert table.deepest_within(5_000).name == "CC1"
    assert table.deepest_within(300_000).name == "CC6"


def test_by_name():
    table = CStateTable.default()
    assert table.by_name("CC6").index == 2
    with pytest.raises(KeyError):
        table.by_name("CC3")


def test_sample_exit_latency_noise_free_without_rng():
    table = CStateTable.default()
    cc6 = table.by_name("CC6")
    assert table.sample_exit_latency(cc6) == cc6.exit_latency_ns


def test_sample_exit_latency_with_noise_is_nonnegative():
    table = CStateTable.default()
    cc1 = table.by_name("CC1")
    rng = random.Random(3)
    for _ in range(200):
        assert table.sample_exit_latency(cc1, rng) >= 0


def test_invalid_tables_rejected():
    cc0 = CState("CC0", 0, 0, 0, 0, 1.0)
    with pytest.raises(ValueError):
        CStateTable([])
    with pytest.raises(ValueError):
        CStateTable([CState("CC1", 1, 10, 0, 10, 1.0)])  # must start at CC0
    with pytest.raises(ValueError):
        # Exit latency decreasing with depth.
        CStateTable([cc0, CState("CC1", 1, 100, 0, 10, 1.0),
                     CState("CC6", 2, 50, 0, 10, 0.2)])
