"""Processor topology and DVFS domains."""

import pytest

from repro.cpu.topology import CHIP_WIDE, PER_CORE, Processor
from repro.units import MS


def make_processor(sim, domain=PER_CORE, n_cores=2):
    return Processor(sim, n_cores=n_cores, dvfs_domain=domain)


def test_builds_requested_core_count(sim):
    proc = make_processor(sim, n_cores=4)
    assert proc.n_cores == 4
    assert [c.core_id for c in proc.cores] == [0, 1, 2, 3]


def test_per_core_requests_are_independent(sim):
    proc = make_processor(sim, PER_CORE)
    proc.request_pstate(0, 10)
    sim.run_until(5 * MS)
    assert proc.cores[0].pstate_index == 10
    assert proc.cores[1].pstate_index == 0


def test_chip_wide_resolves_to_fastest_request(sim):
    proc = make_processor(sim, CHIP_WIDE)
    proc.request_pstate(0, 10)
    proc.request_pstate(1, 4)
    sim.run_until(5 * MS)
    # Core 1 wants P4 (faster than P10): both cores land on P4.
    assert proc.cores[0].pstate_index == 4
    assert proc.cores[1].pstate_index == 4


def test_chip_wide_releases_when_fast_request_withdraws(sim):
    proc = make_processor(sim, CHIP_WIDE)
    proc.request_pstate(0, 10)
    proc.request_pstate(1, 4)
    sim.run_until(5 * MS)
    proc.request_pstate(1, 12)
    sim.run_until(10 * MS)
    assert proc.cores[0].pstate_index == 10
    assert proc.cores[1].pstate_index == 10


def test_unknown_domain_rejected(sim):
    with pytest.raises(ValueError):
        Processor(sim, dvfs_domain="socket-wide")


def test_set_all_pstates_now(sim):
    proc = make_processor(sim)
    proc.set_all_pstates_now(7)
    assert all(c.pstate_index == 7 for c in proc.cores)


def test_uncore_follows_fastest_core(sim):
    proc = make_processor(sim)
    meter = proc.energy._uncore
    p0_power = meter.power_w
    proc.set_all_pstates_now(15)
    # set_all bypasses controllers; trigger the listener explicitly via
    # a real pstate change.
    proc.cores[0].set_pstate_index(0)
    proc.cores[0].set_pstate_index(15)
    assert meter.power_w < p0_power


def test_total_energy_positive_after_time(sim):
    proc = make_processor(sim)
    sim.run_until(10 * MS)
    proc.finalize()
    assert proc.total_energy_j() > 0
