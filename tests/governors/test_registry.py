"""Frequency-governor registry."""

import pytest

from repro.cpu.topology import Processor
from repro.governors.registry import FREQ_GOVERNORS, make_freq_governor


def test_all_cpufreq_governors_registered():
    assert set(FREQ_GOVERNORS) == {
        "performance", "powersave", "userspace", "ondemand",
        "conservative", "intel_powersave"}


def test_make_by_name(sim):
    proc = Processor(sim, n_cores=1)
    gov = make_freq_governor("ondemand", sim, proc, 0)
    assert gov.name == "ondemand"
    assert gov.core is proc.cores[0]


def test_make_with_params(sim):
    proc = Processor(sim, n_cores=1)
    gov = make_freq_governor("ondemand", sim, proc, 0, up_threshold=0.8)
    assert gov.up_threshold == 0.8


def test_unknown_name_rejected(sim):
    proc = Processor(sim, n_cores=1)
    with pytest.raises(ValueError):
        make_freq_governor("turbo", sim, proc, 0)
