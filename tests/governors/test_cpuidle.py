"""cpuidle governors: menu prediction, disable, c6only."""

import pytest

from repro.governors.cpuidle import (C6OnlyIdleGovernor, DisableIdleGovernor,
                                     MenuIdleGovernor)
from repro.governors.registry import make_idle_governor
from repro.units import MS, US


class FakeCore:
    def __init__(self, cstates, core_id=0):
        self.cstates = cstates
        self.core_id = core_id


@pytest.fixture
def fake_core(core):
    return FakeCore(core.cstates)


def test_disable_always_cc0(fake_core):
    gov = DisableIdleGovernor()
    assert gov.select(fake_core).name == "CC0"


def test_c6only_always_deepest(fake_core):
    gov = C6OnlyIdleGovernor()
    assert gov.select(fake_core).name == "CC6"


def test_menu_initial_prediction_selects_deep(fake_core):
    gov = MenuIdleGovernor(initial_prediction_ns=500 * US)
    assert gov.select(fake_core).name == "CC6"


def test_menu_learns_short_idles(fake_core):
    gov = MenuIdleGovernor(alpha=0.5)
    for _ in range(10):
        gov.on_idle_end(fake_core, 5 * US)
    assert gov.select(fake_core).name == "CC1"


def test_menu_learns_very_short_idles(fake_core):
    gov = MenuIdleGovernor(alpha=0.5)
    for _ in range(12):
        gov.on_idle_end(fake_core, 500)  # 0.5 µs: below CC1 residency
    assert gov.select(fake_core).name == "CC0"


def test_menu_recovers_toward_deep_after_long_idles(fake_core):
    gov = MenuIdleGovernor(alpha=0.3)
    for _ in range(10):
        gov.on_idle_end(fake_core, 5 * US)
    for _ in range(10):
        gov.on_idle_end(fake_core, 50 * MS)
    assert gov.select(fake_core).name == "CC6"


def test_menu_reselection_deepens_on_overrun(fake_core):
    gov = MenuIdleGovernor(alpha=0.5)
    for _ in range(10):
        gov.on_idle_end(fake_core, 5 * US)
    assert gov.select(fake_core).name == "CC1"
    # Tick re-selection: the idle has already lasted 4 ms.
    assert gov.select(fake_core, idle_elapsed_ns=4 * MS).name == "CC6"


def test_menu_tracks_cores_independently(core):
    gov = MenuIdleGovernor(alpha=1.0)
    a, b = FakeCore(core.cstates, 0), FakeCore(core.cstates, 1)
    gov.on_idle_end(a, 5 * US)
    gov.on_idle_end(b, 10 * MS)
    assert gov.select(a).name == "CC1"
    assert gov.select(b).name == "CC6"


def test_menu_selection_counters(fake_core):
    gov = MenuIdleGovernor()
    gov.select(fake_core)
    gov.select(fake_core)
    assert sum(gov.selections.values()) == 2


def test_registry_builds_by_name():
    assert make_idle_governor("menu").name == "menu"
    assert make_idle_governor("disable").name == "disable"
    assert make_idle_governor("c6only").name == "c6only"
    with pytest.raises(ValueError):
        make_idle_governor("nonexistent")


def test_menu_validation():
    with pytest.raises(ValueError):
        MenuIdleGovernor(alpha=0)
    with pytest.raises(ValueError):
        MenuIdleGovernor(correction=0)
