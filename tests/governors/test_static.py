"""Static frequency governors."""

import pytest

from repro.cpu.topology import Processor
from repro.governors.static import (PerformanceGovernor, PowersaveGovernor,
                                    UserspaceGovernor)
from repro.units import MS


@pytest.fixture
def proc(sim):
    return Processor(sim, n_cores=2)


def test_performance_pins_p0(sim, proc):
    proc.set_all_pstates_now(10)
    gov = PerformanceGovernor(sim, proc, 0)
    gov.start()
    sim.run_until(5 * MS)
    assert proc.cores[0].pstate_index == 0
    assert proc.cores[1].pstate_index == 10  # untouched


def test_powersave_pins_pmin(sim, proc):
    gov = PowersaveGovernor(sim, proc, 0)
    gov.start()
    sim.run_until(5 * MS)
    assert proc.cores[0].pstate_index == proc.pstates.max_index


def test_userspace_pins_requested_state(sim, proc):
    gov = UserspaceGovernor(sim, proc, 0, pstate_index=7)
    gov.start()
    sim.run_until(5 * MS)
    assert proc.cores[0].pstate_index == 7


def test_userspace_runtime_change(sim, proc):
    gov = UserspaceGovernor(sim, proc, 0, pstate_index=7)
    gov.start()
    sim.run_until(5 * MS)
    gov.set_pstate(3)
    sim.run_until(10 * MS)
    assert proc.cores[0].pstate_index == 3


def test_userspace_clamps(sim, proc):
    gov = UserspaceGovernor(sim, proc, 0, pstate_index=99)
    assert gov.pstate_index == proc.pstates.max_index
