"""Governor base-class machinery."""

import pytest

from repro.cpu.core import PRIORITY_TASK, Work
from repro.cpu.topology import Processor
from repro.governors.base import FreqGovernor, UtilGovernorBase
from repro.units import MS


@pytest.fixture
def proc(sim):
    return Processor(sim, n_cores=1)


class FixedGovernor(UtilGovernorBase):
    """Always decides the same index (measurement-path testing)."""

    def __init__(self, sim, proc, cid, index=5, **kw):
        super().__init__(sim, proc, cid, **kw)
        self.index = index
        self.decisions = 0

    def decide(self, utilization):
        self.decisions += 1
        return self.index


def test_request_routes_through_processor(sim, proc):
    gov = FreqGovernor(sim, proc, 0)
    gov.request(7)
    sim.run_until(1 * MS)
    assert proc.cores[0].pstate_index == 7


def test_measure_utilization_reflects_busy_fraction(sim, proc):
    core = proc.cores[0]
    gov = FixedGovernor(sim, proc, 0)
    gov.start()
    # 5 ms of work in a 10 ms window at P0.
    core.submit(Work(0.005 * core.frequency_hz, PRIORITY_TASK))
    sim.run_until(10 * MS + 1)
    assert gov.last_utilization == pytest.approx(0.5, abs=0.01)


def test_measure_utilization_zero_elapsed_returns_last(sim, proc):
    gov = FixedGovernor(sim, proc, 0)
    gov.start()
    sim.run_until(10 * MS)
    first = gov.measure_utilization()
    again = gov.measure_utilization()  # same instant
    assert again == first


def test_sampling_counts_and_decisions(sim, proc):
    gov = FixedGovernor(sim, proc, 0)
    gov.start()
    sim.run_until(35 * MS)
    assert gov.samples == 3
    assert gov.decisions == 3


def test_resume_without_start_does_not_decide(sim, proc):
    gov = FixedGovernor(sim, proc, 0)
    gov.suspend()
    gov.resume(enforce=True)  # not started: no request issued
    sim.run_until(1 * MS)
    assert proc.cores[0].pstate_index == 0


def test_utilization_clamped_to_unit_interval(sim, proc):
    gov = FixedGovernor(sim, proc, 0)
    gov.start()
    sim.run_until(20 * MS)
    assert 0.0 <= gov.measure_utilization() <= 1.0
