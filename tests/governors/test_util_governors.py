"""Utilization-based governors: ondemand, conservative, intel_powersave."""

import pytest

from repro.cpu.core import PRIORITY_TASK, Work
from repro.cpu.topology import Processor
from repro.governors.conservative import ConservativeGovernor
from repro.governors.intel_pstate import IntelPowersaveGovernor
from repro.governors.ondemand import OndemandGovernor
from repro.governors.cpuidle import C6OnlyIdleGovernor
from repro.units import MS


@pytest.fixture
def proc(sim):
    return Processor(sim, n_cores=1)


def keep_busy(sim, core, duty: float, period_ns: int = 1 * MS,
              until_ns: int = 100 * MS):
    """Generate `duty`-of-max-frequency utilization with periodic batches."""
    cycles = duty * period_ns * core.pstates.p0.freq_hz / 1e9
    t = 0
    while t < until_ns:
        sim.schedule_at(t, lambda c=cycles: core.submit(
            Work(c, PRIORITY_TASK)))
        t += period_ns


def test_ondemand_jumps_to_max_when_saturated(sim, proc):
    core = proc.cores[0]
    proc.set_all_pstates_now(10)
    gov = OndemandGovernor(sim, proc, 0)
    gov.start()
    keep_busy(sim, core, duty=1.0)
    sim.run_until(50 * MS)
    assert core.pstate_index == 0


def test_ondemand_drops_to_min_when_idle(sim, proc):
    gov = OndemandGovernor(sim, proc, 0)
    gov.start()
    sim.run_until(50 * MS)
    assert proc.cores[0].pstate_index == proc.pstates.max_index


def test_ondemand_proportional_midrange(sim, proc):
    core = proc.cores[0]
    gov = OndemandGovernor(sim, proc, 0)
    gov.start()
    keep_busy(sim, core, duty=0.3)
    sim.run_until(60 * MS)
    assert 0 < core.pstate_index < proc.pstates.max_index


def test_ondemand_decision_boundaries(sim, proc):
    gov = OndemandGovernor(sim, proc, 0)
    assert gov.decide(1.0) == 0
    assert gov.decide(0.96) == 0
    assert gov.decide(0.0) == proc.pstates.max_index


def test_conservative_steps_one_state(sim, proc):
    core = proc.cores[0]
    gov = ConservativeGovernor(sim, proc, 0)
    assert gov.decide(0.9) == core.pstate_index - 1 or core.pstate_index == 0
    core.set_pstate_index(8)
    assert gov.decide(0.9) == 7
    assert gov.decide(0.1) == 9
    assert gov.decide(0.5) == 8


def test_conservative_converges_down_when_idle(sim, proc):
    core = proc.cores[0]
    gov = ConservativeGovernor(sim, proc, 0)
    gov.start()
    sim.run_until(300 * MS)
    assert core.pstate_index == proc.pstates.max_index


def test_intel_powersave_uses_c0_residency(sim, proc):
    core = proc.cores[0]
    # With C-states enabled, an idle core leaves C0 -> low utilization.
    core.idle_governor = C6OnlyIdleGovernor()
    core.idle_entry_delay_ns = 0
    from repro.cpu.core import PRIORITY_TASK as _PT, Work as _W
    core.submit(_W(1000, _PT))  # pass through busy->idle so C6 is entered
    gov = IntelPowersaveGovernor(sim, proc, 0)
    gov.start()
    sim.run_until(50 * MS)
    assert core.pstate_index == proc.pstates.max_index


def test_intel_powersave_pins_p0_with_cstates_disabled(sim, proc):
    """The Sec. 6.2 footnote: disable + intel_powersave == performance."""
    core = proc.cores[0]
    proc.set_all_pstates_now(15)
    core.idle_governor = None  # never leaves C0
    gov = IntelPowersaveGovernor(sim, proc, 0)
    gov.start()
    sim.run_until(50 * MS)
    assert core.pstate_index == 0


def test_suspend_blocks_decisions(sim, proc):
    core = proc.cores[0]
    gov = OndemandGovernor(sim, proc, 0)
    gov.start()
    gov.suspend()
    sim.run_until(50 * MS)
    assert core.pstate_index == 0  # untouched initial state
    assert gov.samples > 0         # sampling continued


def test_resume_enforces_immediately(sim, proc):
    core = proc.cores[0]
    gov = OndemandGovernor(sim, proc, 0)
    gov.start()
    gov.suspend()
    sim.run_until(50 * MS)
    gov.resume(enforce=True)
    sim.run_until(51 * MS)  # only the DVFS latency, no new sample needed
    assert core.pstate_index == proc.pstates.max_index


def test_stop_cancels_timer(sim, proc):
    gov = OndemandGovernor(sim, proc, 0)
    gov.start()
    sim.run_until(25 * MS)
    samples = gov.samples
    gov.stop()
    sim.run_until(100 * MS)
    assert gov.samples == samples


def test_parameter_validation(sim, proc):
    with pytest.raises(ValueError):
        OndemandGovernor(sim, proc, 0, up_threshold=0)
    with pytest.raises(ValueError):
        ConservativeGovernor(sim, proc, 0, up_threshold=0.2,
                             down_threshold=0.8)
    with pytest.raises(ValueError):
        IntelPowersaveGovernor(sim, proc, 0, setpoint=1.5)
    with pytest.raises(ValueError):
        OndemandGovernor(sim, proc, 0, sampling_period_ns=0)
