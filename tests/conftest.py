"""Shared fixtures for the test suite."""

import pytest

from repro.cpu.core import Core
from repro.cpu.cstate import CStateTable
from repro.cpu.power import PowerModel
from repro.cpu.pstate import PStateTable
from repro.sim.rng import RandomStreams
from repro.sim.simulator import Simulator
from repro.units import GHZ


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def pstates():
    """A Gold-6134-like 16-state table (1.2-3.2 GHz)."""
    return PStateTable.linear(1.2 * GHZ, 3.2 * GHZ, 16)


@pytest.fixture
def rng():
    return RandomStreams(seed=1234)


@pytest.fixture
def make_core(sim, pstates):
    """Factory for cores with deterministic (noise-free) latencies."""

    def _make(core_id: int = 0, **kwargs) -> Core:
        kwargs.setdefault("cstate_table", CStateTable.default(
            cc1_exit_std_ns=0, cc6_exit_std_ns=0))
        kwargs.setdefault("power_model", PowerModel(pstates))
        core = Core(sim, core_id, pstates, **kwargs)
        core.idle_reselect_period_ns = 0
        core.idle_entry_delay_ns = 0
        return core

    return _make


@pytest.fixture
def core(make_core):
    return make_core()
