"""NetworkStack wiring: delivery, responses, segmentation, ACK flood."""

import pytest

from repro.cpu.topology import Processor
from repro.netstack.stack import NetworkStack, StackConfig
from repro.nic.nic import MultiQueueNic
from repro.nic.packet import Packet
from repro.nic.rss import RssDistributor
from repro.units import MS
from repro.workload.request import Request


@pytest.fixture
def system(sim):
    processor = Processor(sim, n_cores=2)
    nic = MultiQueueNic(sim, n_queues=2,
                        rss=RssDistributor(2, mode="round-robin"))
    stack = NetworkStack(sim, processor, nic)
    responses = []
    stack.response_sink = responses.append
    return processor, nic, stack, responses


def test_one_napi_socket_scheduler_per_core(system):
    _, _, stack, _ = system
    assert len(stack.napis) == 2
    assert len(stack.sockets) == 2
    assert len(stack.schedulers) == 2
    assert len(stack.ksoftirqds) == 2


def test_rx_packet_lands_in_matching_socket(sim, system):
    _, nic, stack, _ = system
    request = Request(flow_id=1, created_ns=0)
    nic.receive(Packet(flow_id=1, size_bytes=128, created_ns=0,
                       request=request))
    sim.run_until(1 * MS)
    assert len(stack.sockets[1]) == 1
    assert len(stack.sockets[0]) == 0


def test_small_response_single_segment(sim, system):
    _, nic, stack, responses = system
    request = Request(flow_id=0, created_ns=0, response_bytes=200)
    stack.send_response(request, 0)
    sim.run_until(1 * MS)
    assert len(responses) == 1
    assert nic.queues[0].txc_enqueued == 1


def test_large_response_segments_and_acks(sim, system):
    _, nic, stack, _ = system
    # 5 MSS-sized segments; TCP client ACKs each one.
    request = Request(flow_id=0, created_ns=0,
                      response_bytes=5 * 1448, acked_response=True)
    stack.send_response(request, 0)
    sim.run_until(5 * MS)
    assert nic.queues[0].txc_enqueued == 5
    # The ACKs were consumed by NAPI, never delivered to a socket.
    assert nic.rx_packets == 5          # the 5 ACKs arrived
    assert nic.rx_data_packets == 0     # none of them were data


def test_unacked_response_generates_no_acks(sim, system):
    _, nic, stack, _ = system
    request = Request(flow_id=0, created_ns=0,
                      response_bytes=5 * 1448, acked_response=False)
    stack.send_response(request, 0)
    sim.run_until(5 * MS)
    assert nic.rx_packets == 0


def test_missing_sink_raises(sim):
    processor = Processor(sim, n_cores=1)
    nic = MultiQueueNic(sim, n_queues=1)
    stack = NetworkStack(sim, processor, nic)
    with pytest.raises(RuntimeError):
        stack.send_response(Request(flow_id=0, created_ns=0), 0)


def test_queue_core_count_mismatch_rejected(sim):
    processor = Processor(sim, n_cores=2)
    nic = MultiQueueNic(sim, n_queues=1)
    with pytest.raises(ValueError):
        NetworkStack(sim, processor, nic)


def test_aggregate_counters(sim, system):
    _, nic, stack, _ = system
    request = Request(flow_id=0, created_ns=0)
    nic.receive(Packet(flow_id=0, size_bytes=128, created_ns=0,
                       request=request))
    sim.run_until(1 * MS)
    total = (stack.total_pkts_interrupt_mode()
             + stack.total_pkts_polling_mode())
    assert total == 1
