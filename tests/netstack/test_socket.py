"""Socket queues."""

import pytest

from repro.netstack.socket import SocketQueue
from repro.nic.packet import Packet


class FakeThread:
    def __init__(self):
        self.wakes = 0

    def wake(self):
        self.wakes += 1


def pkt():
    return Packet(flow_id=0, size_bytes=64, created_ns=0)


def test_deliver_and_pop_fifo():
    sock = SocketQueue(0)
    a, b = pkt(), pkt()
    sock.deliver(a)
    sock.deliver(b)
    assert sock.pop() is a
    assert sock.pop() is b
    assert sock.pop() is None


def test_deliver_wakes_consumer():
    sock = SocketQueue(0)
    consumer = FakeThread()
    sock.consumer = consumer
    sock.deliver(pkt())
    assert consumer.wakes == 1


def test_capacity_drop():
    sock = SocketQueue(0, capacity=1)
    assert sock.deliver(pkt())
    assert not sock.deliver(pkt())
    assert sock.dropped == 1
    assert sock.delivered == 1


def test_max_depth_tracked():
    sock = SocketQueue(0)
    for _ in range(5):
        sock.deliver(pkt())
    sock.pop()
    sock.deliver(pkt())
    assert sock.max_depth == 5


def test_invalid_capacity():
    with pytest.raises(ValueError):
        SocketQueue(0, capacity=0)
