"""NAPI mode transitions: interrupt vs polling, budgets, deferral."""

import pytest

from repro.netstack.napi import (MODE_INTERRUPT, MODE_POLLING, NapiConfig,
                                 NapiContext, STATE_IRQ, STATE_KSOFTIRQD,
                                 STATE_SOFTIRQ)
from repro.nic.nic import MultiQueueNic
from repro.nic.packet import Packet
from repro.nic.rss import RssDistributor
from repro.osched.scheduler import CoreScheduler
from repro.netstack.ksoftirqd import KsoftirqdThread
from repro.units import MS, US


def build(sim, core, config=None, with_ksoftirqd=False):
    nic = MultiQueueNic(sim, n_queues=1,
                        rss=RssDistributor(1, mode="round-robin"))
    delivered = []
    napi = NapiContext(sim, core, nic, 0,
                       config=config or NapiConfig(),
                       deliver=lambda pkt, cid: delivered.append(pkt))
    nic.bind(0, napi.on_interrupt)
    if with_ksoftirqd:
        sched = CoreScheduler(sim, core)
        ksoftirqd = KsoftirqdThread(core.core_id)
        sched.add_thread(ksoftirqd)
        ksoftirqd.attach_napi(napi)
    return nic, napi, delivered


def pkt(flow=0, kind="data"):
    return Packet(flow_id=flow, size_bytes=128, created_ns=0, kind=kind)


def test_single_packet_processed_in_interrupt_mode(sim, core):
    nic, napi, delivered = build(sim, core)
    nic.receive(pkt())
    sim.run_until(1 * MS)
    assert len(delivered) == 1
    assert napi.pkts_interrupt_mode == 1
    assert napi.pkts_polling_mode == 0
    assert napi.state == STATE_IRQ
    assert nic.irq_enabled(0)


def test_backlog_beyond_budget_counts_as_polling(sim, core):
    config = NapiConfig(poll_budget=4)
    nic, napi, delivered = build(sim, core, config)
    nic.disable_irq(0)
    for _ in range(10):
        nic.receive(pkt())
    nic.enable_irq(0)
    sim.run_until(5 * MS)
    assert len(delivered) == 10
    # First poll (4 packets) is interrupt mode; re-polls are polling mode.
    assert napi.pkts_interrupt_mode == 4
    assert napi.pkts_polling_mode == 6


def test_irq_masked_while_polling(sim, core):
    config = NapiConfig(poll_budget=1, rx_cycles_per_packet=3_200_000)
    nic, napi, delivered = build(sim, core, config)
    for _ in range(3):
        nic.receive(pkt())
    sim.run_until(10 * US)
    assert napi.state == STATE_SOFTIRQ
    assert not nic.irq_enabled(0)
    sim.run_until(50 * MS)
    assert napi.state == STATE_IRQ
    assert nic.irq_enabled(0)


def test_interrupt_while_polling_is_a_bug(sim, core):
    nic, napi, _ = build(sim, core)
    napi.state = STATE_SOFTIRQ
    with pytest.raises(RuntimeError):
        napi.on_interrupt(0)


def test_time_limit_defers_to_ksoftirqd(sim, core):
    # Each poll takes ~1 ms at P0 (1 packet/batch), so the 600 µs default
    # limit defers after the first re-poll.
    config = NapiConfig(poll_budget=1, rx_cycles_per_packet=3_200_000)
    nic, napi, delivered = build(sim, core, config, with_ksoftirqd=True)
    for _ in range(5):
        nic.receive(pkt())
    sim.run_until(100 * MS)
    assert napi.deferrals >= 1
    assert len(delivered) == 5
    assert napi.ksoftirqd.wake_count >= 1
    assert napi.state == STATE_IRQ  # finished and re-armed


def test_deferral_without_ksoftirqd_keeps_polling(sim, core):
    config = NapiConfig(poll_budget=1, rx_cycles_per_packet=3_200_000)
    nic, napi, delivered = build(sim, core, config, with_ksoftirqd=False)
    for _ in range(4):
        nic.receive(pkt())
    sim.run_until(100 * MS)
    assert len(delivered) == 4


def test_ack_packets_not_delivered_to_socket(sim, core):
    nic, napi, delivered = build(sim, core)
    nic.receive(pkt(kind="ack"))
    nic.receive(pkt(kind="data"))
    sim.run_until(1 * MS)
    assert len(delivered) == 1
    assert delivered[0].kind == "data"


def test_poll_listeners_observe_counts_and_modes(sim, core):
    observed = []
    nic, napi, _ = build(sim, core, NapiConfig(poll_budget=2))
    napi.poll_listeners.append(
        lambda n, count, mode: observed.append((count, mode)))
    nic.disable_irq(0)
    for _ in range(3):
        nic.receive(pkt())
    nic.enable_irq(0)
    sim.run_until(5 * MS)
    assert (2, MODE_INTERRUPT) in observed
    assert (1, MODE_POLLING) in observed


def test_txc_cleanup_counts_toward_budget(sim, core):
    config = NapiConfig(poll_budget=4)
    nic, napi, delivered = build(sim, core, config)
    nic.disable_irq(0)
    from repro.nic.packet import TxCompletion
    for i in range(3):
        nic.queues[0].push_txc(TxCompletion(i))
    for _ in range(3):
        nic.receive(pkt())
    nic.enable_irq(0)
    sim.run_until(5 * MS)
    # First batch: 3 txc + 1 rx (budget 4); second: 2 rx.
    assert napi.pkts_interrupt_mode == 1
    assert napi.pkts_polling_mode == 2
    assert len(delivered) == 3


def test_config_validation():
    with pytest.raises(ValueError):
        NapiConfig(poll_budget=0)
    with pytest.raises(ValueError):
        NapiConfig(max_iterations=0)
