"""Property-based tests: the NAPI path conserves packets."""

from hypothesis import given, settings, strategies as st

from repro.cpu.core import Core
from repro.cpu.pstate import PStateTable
from repro.netstack.ksoftirqd import KsoftirqdThread
from repro.netstack.napi import NapiConfig, NapiContext
from repro.nic.nic import MultiQueueNic
from repro.nic.packet import Packet
from repro.nic.rss import RssDistributor
from repro.osched.scheduler import CoreScheduler
from repro.sim.simulator import Simulator
from repro.units import GHZ, S

# Batches of (arrival_time_ns, n_packets).
batch_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=5_000_000),
              st.integers(min_value=1, max_value=80)),
    min_size=1, max_size=12)


def build():
    sim = Simulator()
    table = PStateTable.linear(1.2 * GHZ, 3.2 * GHZ, 16)
    core = Core(sim, 0, table)
    core.idle_reselect_period_ns = 0
    core.idle_entry_delay_ns = 0
    nic = MultiQueueNic(sim, n_queues=1,
                        rss=RssDistributor(1, mode="round-robin"))
    delivered = []
    napi = NapiContext(sim, core, nic, 0, config=NapiConfig(),
                       deliver=lambda pkt, cid: delivered.append(pkt))
    nic.bind(0, napi.on_interrupt)
    sched = CoreScheduler(sim, core)
    ksoftirqd = KsoftirqdThread(0)
    sched.add_thread(ksoftirqd)
    ksoftirqd.attach_napi(napi)
    return sim, nic, napi, delivered


@settings(max_examples=30, deadline=None)
@given(batch_strategy)
def test_every_data_packet_is_delivered_exactly_once(batches):
    sim, nic, napi, delivered = build()
    total = 0
    for t, n in batches:
        total += n

        def send(n=n):
            for _ in range(n):
                nic.receive(Packet(flow_id=0, size_bytes=100,
                                   created_ns=sim.now))

        sim.schedule_at(t, send)
    sim.run_until(1 * S)
    assert len(delivered) == total
    assert len(set(p.packet_id for p in delivered)) == total
    # Mode attribution partitions the same packets.
    assert napi.pkts_interrupt_mode + napi.pkts_polling_mode == total
    # All sessions closed; interrupts re-enabled.
    assert napi.state == "irq"
    assert nic.irq_enabled(0)


@settings(max_examples=20, deadline=None)
@given(batch_strategy, st.integers(min_value=0, max_value=15))
def test_conservation_holds_at_any_frequency(batches, pstate):
    sim, nic, napi, delivered = build()
    napi.core.set_pstate_index(pstate)
    total = 0
    for t, n in batches:
        total += n

        def send(n=n):
            for _ in range(n):
                nic.receive(Packet(flow_id=0, size_bytes=100,
                                   created_ns=sim.now))

        sim.schedule_at(t, send)
    sim.run_until(2 * S)
    assert len(delivered) == total
